package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/c2ip"
	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/derive"
	"repro/internal/inline"
	"repro/internal/ip"
	"repro/internal/libc"
	"repro/internal/pointer"
	"repro/internal/ppt"
)

// Options configures a CSSV run.
type Options struct {
	// PointerMode selects the whole-program points-to algorithm.
	PointerMode pointer.Mode
	// Domain selects the numeric domain (default polyhedra).
	Domain analysis.Domain
	// PPT tunes procedural points-to construction.
	PPT ppt.Options
	// C2IP tunes the transformation.
	C2IP c2ip.Options
	// WideningDelay / NarrowingPasses forward to the fixpoint engine.
	WideningDelay   int
	NarrowingPasses int
	// Cascade runs the tiered check discharge (interval, then zone, then
	// the configured domain on the sliced residual) instead of a single
	// fixpoint in the configured domain.
	Cascade bool
	// NoSideEffectCheck disables the modifies-clause verification.
	NoSideEffectCheck bool
	// Procs restricts analysis to these procedures (default: all defined
	// procedures that are not libc models).
	Procs []string
	// NoLibc disables prepending the standard-library contract header.
	NoLibc bool
	// Contracts selects which contract the analyzed procedure itself gets:
	// the manual one from the source (default), a vacuous one (side effects
	// only), or the automatically derived one (paper §4, Table 5's
	// "Deriving" columns). Callees always keep their declared contracts.
	Contracts ContractMode
}

// ContractMode selects the analyzed procedure's own contract.
type ContractMode int

// Contract modes.
const (
	ManualContracts ContractMode = iota
	VacuousContracts
	AutoContracts
)

// ProcReport is one row of the paper's Table 5.
type ProcReport struct {
	Name string
	// LOC: non-blank lines of the original function; SLOC: after the
	// source-to-source transformations (CoreC + inlining).
	LOC, SLOC int
	// IPVars / IPSize: constraint variables and statements of the C2IP
	// output.
	IPVars, IPSize int
	// CPU and Space (total bytes allocated) for the whole per-procedure
	// pipeline.
	CPU   time.Duration
	Space uint64
	// Violations are the reported messages; Warnings the non-error notes.
	Violations []analysis.Violation
	Warnings   []c2ip.Warning
	Iterations int
	// IP retains the generated program (printing, derivation, tests).
	IP *ip.Program
	// Cascade carries the per-tier statistics and check provenance when
	// Options.Cascade is set.
	Cascade *analysis.CascadeResult
	// Inlined is the analyzed (inlined + normalized) procedure.
	Inlined *cast.FuncDecl
	// PPT is the procedural points-to state used.
	PPT *ppt.PPT
	// Derived carries the auto-derived contract under AutoContracts.
	Derived *derive.Result
}

// Messages returns the number of reported messages.
func (r *ProcReport) Messages() int { return len(r.Violations) }

// Report is a whole-run result.
type Report struct {
	Procs []ProcReport
}

// TotalMessages sums messages over all procedures.
func (r *Report) TotalMessages() int {
	n := 0
	for i := range r.Procs {
		n += r.Procs[i].Messages()
	}
	return n
}

// Proc returns the report for the named procedure, or nil.
func (r *Report) Proc(name string) *ProcReport {
	for i := range r.Procs {
		if r.Procs[i].Name == name {
			return &r.Procs[i]
		}
	}
	return nil
}

// Prepare parses and normalizes a translation unit (with the libc contract
// header unless noLibc), for callers that drive individual phases (e.g.
// contract derivation).
func Prepare(filename, src string, noLibc bool) (*corec.Program, error) {
	sources := []cparse.NamedSource{{Name: filename, Src: src}}
	if !noLibc {
		sources = []cparse.NamedSource{
			{Name: "<libc contracts>", Src: libc.Header},
			{Name: filename, Src: src},
		}
	}
	file, err := cparse.ParseFiles(sources)
	if err != nil {
		return nil, err
	}
	return corec.Normalize(file)
}

// AnalyzeSource runs CSSV on a single translation unit given as text.
func AnalyzeSource(filename, src string, opts Options) (*Report, error) {
	sources := []cparse.NamedSource{{Name: filename, Src: src}}
	if !opts.NoLibc {
		sources = []cparse.NamedSource{
			{Name: "<libc contracts>", Src: libc.Header},
			{Name: filename, Src: src},
		}
	}
	file, err := cparse.ParseFiles(sources)
	if err != nil {
		return nil, err
	}
	prog, err := corec.Normalize(file)
	if err != nil {
		return nil, err
	}

	procs := opts.Procs
	if procs == nil {
		for _, fd := range prog.File.Funcs() {
			if !libc.Functions[fd.Name] {
				procs = append(procs, fd.Name)
			}
		}
		sort.Strings(procs)
	}

	rep := &Report{}
	for _, name := range procs {
		pr, err := analyzeProc(file, prog, name, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rep.Procs = append(rep.Procs, *pr)
	}
	return rep, nil
}

// vacuousOf keeps only the side-effect clause of a contract.
func vacuousOf(fd *cast.FuncDecl) *cast.Contract {
	if fd == nil || fd.Contract == nil {
		return &cast.Contract{}
	}
	return &cast.Contract{Modifies: fd.Contract.Modifies}
}

// withContract returns a program copy where proc's contract is replaced.
func withContract(prog *corec.Program, proc string, ct *cast.Contract) *corec.Program {
	out := &cast.File{Name: prog.File.Name}
	for _, d := range prog.File.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Name != proc {
			out.Decls = append(out.Decls, d)
			continue
		}
		nf := *fd
		nf.Contract = ct
		out.Decls = append(out.Decls, &nf)
	}
	return &corec.Program{File: out, Strings: prog.Strings}
}

// analyzeProc runs the per-procedure pipeline of Fig. 1.
func analyzeProc(orig *cast.File, prog *corec.Program, name string, opts Options) (*ProcReport, error) {
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	pr := &ProcReport{Name: name}
	if fd := orig.Lookup(name); fd != nil && fd.Body != nil {
		pr.LOC = cast.CountLines(cast.FuncString(fd))
	}

	// Contract-mode preprocessing: replace P's own pre/postcondition.
	switch opts.Contracts {
	case VacuousContracts:
		prog = withContract(prog, name, vacuousOf(prog.File.Lookup(name)))
	case AutoContracts:
		der, err := derive.Derive(prog, name, derive.Options{
			PointerMode:     opts.PointerMode,
			WideningDelay:   opts.WideningDelay,
			NarrowingPasses: opts.NarrowingPasses,
		})
		if err != nil {
			return nil, fmt.Errorf("derive: %w", err)
		}
		ct := &cast.Contract{
			Requires: der.Requires,
			Ensures:  der.Ensures,
			Modifies: der.Modifies,
		}
		prog = withContract(prog, name, ct)
		pr.Derived = der
	}

	// Phase 1: inline contracts into P, then renormalize.
	inlined, err := inline.File(prog, name)
	if err != nil {
		return nil, fmt.Errorf("inline: %w", err)
	}
	nprog, err := corec.Renormalize(prog, inlined)
	if err != nil {
		return nil, fmt.Errorf("renormalize: %w", err)
	}
	fd := nprog.File.Lookup(name)
	if fd == nil || fd.Body == nil {
		return nil, fmt.Errorf("procedure not found or has no body")
	}
	if err := corec.Validate(fd); err != nil {
		return nil, fmt.Errorf("inlined procedure is not CoreC: %w", err)
	}
	pr.SLOC = cast.CountLines(cast.FuncString(fd))
	pr.Inlined = fd

	// Phase 2: whole-program flow-insensitive pointer analysis + PPT.
	g := pointer.Analyze(nprog, opts.PointerMode)
	pt := ppt.Build(nprog, fd, g, opts.PPT)
	pr.PPT = pt

	// Phase 3: C2IP.
	res, err := c2ip.Transform(nprog, fd, pt, opts.C2IP)
	if err != nil {
		return nil, fmt.Errorf("c2ip: %w", err)
	}
	pr.IP = res.Prog
	pr.Warnings = res.Warnings
	pr.IPVars = res.Prog.NumVars()
	pr.IPSize = res.Prog.Size()

	// Phase 4: integer analysis — a single fixpoint in the configured
	// domain, or the tiered cascade over reduced sub-programs.
	aopts := analysis.Options{
		Domain:          opts.Domain,
		WideningDelay:   opts.WideningDelay,
		NarrowingPasses: opts.NarrowingPasses,
	}
	if opts.Cascade {
		cres, err := analysis.AnalyzeCascade(res.Prog, aopts)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pr.Violations = cres.Violations
		pr.Iterations = cres.Iterations
		pr.Cascade = cres
	} else {
		ares, err := analysis.Analyze(res.Prog, aopts)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pr.Violations = ares.Violations
		pr.Iterations = ares.Iterations
	}

	// Side-effect verification (the modifies clause is part of the
	// contract and is checked like the pre/postconditions).
	if !opts.NoSideEffectCheck {
		if origFd := prog.File.Lookup(name); origFd != nil {
			pr.Violations = append(pr.Violations,
				checkSideEffects(fd, pt, origFd.Contract)...)
		}
	}

	pr.CPU = time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	pr.Space = msAfter.TotalAlloc - msBefore.TotalAlloc
	return pr, nil
}
