package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/arena"
	"repro/internal/budget"
	"repro/internal/c2ip"
	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/certify"
	"repro/internal/clex"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/ctypes"
	"repro/internal/derive"
	"repro/internal/inline"
	"repro/internal/ip"
	"repro/internal/libc"
	"repro/internal/pointer"
	"repro/internal/polyhedra"
	"repro/internal/ppt"
	"repro/internal/schedule"
	"repro/internal/zone"
)

// Options configures a CSSV run.
type Options struct {
	// PointerMode selects the whole-program points-to algorithm.
	PointerMode pointer.Mode
	// Target selects the object-layout data model (sizeof/offsetof folding,
	// member offsets, alignment padding). The default Paper32 reproduces the
	// paper's packed 32-bit model bit for bit; SysV64 applies the System V
	// AMD64 ABI rules and enables the field-sensitive store transfer and
	// access-path location naming.
	Target ctypes.Target
	// Workers bounds how many procedures are analyzed concurrently. The
	// per-procedure pipelines are independent by construction (the paper's
	// central design point: each procedure is verified separately against
	// contracts), so they fan out over a bounded pool. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential driver exactly.
	// Reports are deterministic — input order, bit-identical messages —
	// regardless of the worker count.
	Workers int
	// Domain selects the numeric domain (default polyhedra).
	Domain analysis.Domain
	// PPT tunes procedural points-to construction.
	PPT ppt.Options
	// C2IP tunes the transformation.
	C2IP c2ip.Options
	// WideningDelay / NarrowingPasses forward to the fixpoint engine.
	WideningDelay   int
	NarrowingPasses int
	// Cascade runs the tiered check discharge (interval, then zone, then
	// the configured domain on the sliced residual) instead of a single
	// fixpoint in the configured domain.
	Cascade bool
	// Certify validates the analysis a posteriori: every discharged check
	// is re-proved from an exported invariant certificate by an independent
	// Fourier–Motzkin checker (no polyhedra code in the loop), and every
	// reported violation is replayed through the deterministic directed
	// interpreter and classified witnessed (a concrete trace reaches the
	// failing assert first) or potential. Results land in
	// ProcReport.Certification.
	Certify bool
	// NoSideEffectCheck disables the modifies-clause verification.
	NoSideEffectCheck bool
	// ProcDeadline bounds the wall-clock time of each procedure's
	// pipeline (0 = unlimited). When the deadline passes, the fixpoint
	// engine and the numeric substrates degrade gracefully: remaining
	// checks are reported as unresolved potential errors and the
	// procedure's report carries a Degradation record — the run itself
	// always completes.
	ProcDeadline time.Duration
	// StepBudget bounds the number of fixpoint worklist iterations per
	// procedure (0 = unlimited; cascade tiers share the budget). Unlike
	// the wall-clock deadline, step exhaustion is fully deterministic.
	StepBudget int
	// MaxRays overrides the polyhedra ray cap for this run (0 = the
	// package default, negative = unlimited). Replaces the old mutable
	// polyhedra.MaxRays package global.
	MaxRays int
	// Octagon inserts the octagon tier (±x±y constraints on a
	// doubled-variable DBM) between the zone tier and the final domain.
	// Only meaningful with Cascade.
	Octagon bool
	// NoArena disables the per-procedure slice arenas that recycle
	// numeric-substrate storage (DBM rows, generator vectors, saturation
	// bitsets). The arena is on by default; the toggle exists for
	// debugging and for measuring its effect.
	NoArena bool
	// Procs restricts analysis to these procedures (default: all defined
	// procedures that are not libc models).
	Procs []string
	// NoLibc disables prepending the standard-library contract header.
	NoLibc bool
	// Contracts selects which contract the analyzed procedure itself gets:
	// the manual one from the source (default), a vacuous one (side effects
	// only), or the automatically derived one (paper §4, Table 5's
	// "Deriving" columns). Callees always keep their declared contracts.
	Contracts ContractMode
	// CacheDir enables the content-addressed on-disk result cache
	// (internal/cache) rooted at this directory. An exact hit replays the
	// stored verdict; an entry whose body and configuration match but whose
	// environment (other declarations, prelude, own contract) changed takes
	// the certificate-revalidation fast path — front end re-run, stored
	// certificates re-proved by the independent checker, no fixpoint.
	// Degraded and auto-contract results are never cached.
	CacheDir string
	// CacheVerify treats every exact hit like a revalidation: certificates
	// re-proved and assert accounting re-checked before the entry is
	// trusted (paranoid mode; the integrity digests are always checked).
	CacheVerify bool
	// PtCacheSize bounds the process-wide pointer-analysis memo
	// (0 = the 128-entry default, negative = unbounded). Overflow evicts
	// the oldest entries first; evictions are surfaced in RunStats.
	PtCacheSize int
	// Schedule selects how the cascade orders its tiers (only meaningful
	// with Cascade): Off (default) runs the legacy fixed cascade through
	// the legacy code path, byte-identical reports; Static routes every
	// check through the scheduler with the fixed plan; Adaptive plans
	// per-check tier order and step budgets from the on-disk outcome
	// profile. Scheduling moves cost, never verdicts: the final domain
	// always runs last and unbudgeted on whatever remains.
	Schedule schedule.Mode
	// ScheduleProfile is the directory holding the scheduler's cross-run
	// outcome profiles (content-addressed by configuration, like cache
	// entries). Empty defaults to <CacheDir>/schedule when CacheDir is
	// set; with neither, outcomes are recorded in-memory only and the
	// adaptive scheduler starts cold every run.
	ScheduleProfile string
}

// ContractMode selects the analyzed procedure's own contract.
type ContractMode int

// Contract modes.
const (
	ManualContracts ContractMode = iota
	VacuousContracts
	AutoContracts
)

// ProcReport is one row of the paper's Table 5.
type ProcReport struct {
	Name string
	// LOC: non-blank lines of the original function; SLOC: after the
	// source-to-source transformations (CoreC + inlining).
	LOC, SLOC int
	// IPVars / IPSize: constraint variables and statements of the C2IP
	// output.
	IPVars, IPSize int
	// CPU is the elapsed time of the whole per-procedure pipeline. Under
	// Workers > 1 it includes time the worker goroutine spent descheduled,
	// so the sum over procedures ("sequential-equivalent CPU") can exceed
	// the run's wall clock.
	CPU time.Duration
	// Space is the process-wide heap allocation delta (runtime/metrics
	// "/gc/heap/allocs:bytes") around the pipeline. It is measured only
	// when the procedure ran exclusively (Workers == 1): with concurrent
	// workers a global counter cannot attribute allocations to one
	// procedure, so the driver reports 0 rather than noise.
	Space uint64
	// Violations are the reported messages; Warnings the non-error notes.
	Violations []analysis.Violation
	Warnings   []c2ip.Warning
	Iterations int
	// IP retains the generated program (printing, derivation, tests).
	IP *ip.Program
	// Cascade carries the per-tier statistics and check provenance when
	// Options.Cascade is set.
	Cascade *analysis.CascadeResult
	// Certification carries, under Options.Certify, the per-check outcome
	// of certificate verification and counter-example replay.
	Certification *certify.Outcome
	// Inlined is the analyzed (inlined + normalized) procedure.
	Inlined *cast.FuncDecl
	// PPT is the procedural points-to state used.
	PPT *ppt.PPT
	// Derived carries the auto-derived contract under AutoContracts.
	Derived *derive.Result
	// Degraded is non-nil when the procedure's analysis did not run to
	// completion — its budget was exhausted or it panicked. The
	// procedure's unresolved checks are conservatively present in
	// Violations (never silently "safe").
	Degraded *Degradation
	// CacheStatus records how the result cache participated: "hit" (exact
	// replay, no front end or fixpoint), "revalidated" (front end re-run,
	// certificates re-proved, no fixpoint), "stored" (fresh analysis,
	// result written to the cache), "uncached" (caching enabled but this
	// result was not storable — e.g. degraded), or "" (caching disabled).
	// On "hit" the AST-level intermediates (Inlined, PPT) are nil and
	// Space reflects the hit path, not the original analysis.
	CacheStatus string
}

// Degradation records why and how a procedure's analysis fell short of a
// full-precision run.
type Degradation struct {
	// Cause is "deadline", "step-budget", or "panic".
	Cause string
	// Detail is a human-readable description (for panics, the panic
	// value).
	Detail string
	// Stack is the goroutine stack at the point of a panic; empty for
	// budget exhaustion. Timing- and scheduler-dependent, so it is
	// excluded from determinism comparisons.
	Stack string
	// Unresolved counts the checks reported as unresolved potential
	// errors because of this degradation.
	Unresolved int
}

// Messages returns the number of reported messages.
func (r *ProcReport) Messages() int { return len(r.Violations) }

// Report is a whole-run result.
type Report struct {
	Procs []ProcReport
	// Stats aggregates whole-run cost and cache effectiveness.
	Stats RunStats
}

// RunStats describes one AnalyzeSource run.
type RunStats struct {
	// Workers is the pool size actually used (after defaulting and
	// clamping to the procedure count).
	Workers int
	// Wall is the elapsed time of the whole run; SequentialCPU is the sum
	// of the per-procedure pipeline times — an estimate of the wall clock
	// a Workers == 1 run would need. When workers oversubscribe the
	// available CPUs the per-procedure times include descheduled time, so
	// the estimate (and the speedup derived from it) reads high.
	Wall          time.Duration
	SequentialCPU time.Duration
	// PointerCacheHits / PointerCacheMisses count the memoized
	// whole-program pointer analyses consumed by this run.
	PointerCacheHits, PointerCacheMisses int
	// LibcHeaderReused reports whether the parsed libc contract header was
	// already cached when this run started.
	LibcHeaderReused bool
	// PrecisionDrops counts constraints the polyhedra substrate dropped at
	// its ray cap during this run. Each drop is a sound over-approximation,
	// but a nonzero count means precision was lost — surfaced here (and on
	// the cssv -stats line) instead of silently. The counter is per-run
	// (threaded through polyhedra.Config), so concurrent AnalyzeSource
	// calls in one process cannot cross-contaminate each other.
	PrecisionDrops int
	// DegradedProcs counts procedures whose analysis was cut short by a
	// budget or isolated after a panic; UnresolvedChecks counts their
	// checks conservatively reported as potential errors.
	DegradedProcs    int
	UnresolvedChecks int
	// ArenaRecycledBytes sums, over all procedures, the bytes the
	// per-procedure slice arenas served out of their free lists instead
	// of the garbage-collected heap. Recycling decisions depend only on
	// each procedure's operation sequence, so the total is deterministic.
	ArenaRecycledBytes int64
	// SparseZoneSelections / DenseZoneSelections count the zone
	// substrate's closure-boundary representation decisions across the
	// run (the automatic density policy; forced policies count too).
	// Content-only decisions, hence deterministic.
	SparseZoneSelections, DenseZoneSelections int64
	// CacheHits / CacheRevalidated / CacheMisses count, under
	// Options.CacheDir, how each cacheable procedure was resolved: exact
	// replay, certificate revalidation (front end re-run, stored
	// certificates re-proved, no fixpoint), or full analysis. CacheStores
	// counts entries written (fresh results and revalidation refreshes
	// under the new key). CacheBadEntries counts corrupt, truncated, or
	// undecodable entries encountered (each is logged and analyzed
	// around); CacheCertRejected counts entries rejected because a stored
	// certificate failed re-verification or assert accounting — never
	// silently trusted.
	CacheHits, CacheRevalidated, CacheMisses int
	CacheStores                              int
	CacheBadEntries, CacheCertRejected       int
	// PtCacheEvictions counts pointer-analysis memo entries evicted
	// (oldest first) because the memo reached its configured bound.
	PtCacheEvictions int
	// FixpointIterations sums the fixpoint worklist iterations actually
	// executed this run. Cached procedures contribute nothing — a fully
	// warm run reports 0, which is the deterministic witness that the
	// result cache, not the engine, produced the reports.
	FixpointIterations int
	// MemberResolved / MemberHavocked count C2IP memory-access sites
	// (member accesses lowered to byte arithmetic, plus ordinary derefs)
	// whose constraints were generated with a precise offset/aSize pair for
	// every possible target region, versus sites where a channel had to be
	// abandoned (unknown target, untracked offset, or the legacy wide-store
	// terminator havoc). Content-only counts, hence deterministic.
	MemberResolved, MemberHavocked int
	// ScheduleMode names the cascade scheduling mode of the run ("off",
	// "static", "adaptive"). ScheduleDecisions counts the plans the
	// scheduler applied across all procedures; ScheduleFromProfile how
	// many of them were steered by the recorded profile rather than the
	// static fallback. Zero/empty when scheduling is off or the cascade
	// did not run.
	ScheduleMode        string
	ScheduleDecisions   int
	ScheduleFromProfile int
	// TierDischarged counts, per tier (domain name, plus "unreachable"
	// for CFG-pruned checks), the checks that tier discharged across the
	// run; nil when the cascade did not run. Content-only, deterministic.
	TierDischarged map[string]int
}

// TotalMessages sums messages over all procedures.
func (r *Report) TotalMessages() int {
	n := 0
	for i := range r.Procs {
		n += r.Procs[i].Messages()
	}
	return n
}

// Proc returns the report for the named procedure, or nil.
func (r *Report) Proc(name string) *ProcReport {
	for i := range r.Procs {
		if r.Procs[i].Name == name {
			return &r.Procs[i]
		}
	}
	return nil
}

// parseUnit parses (with the libc contract header unless noLibc) and
// normalizes a translation unit under a fresh layout engine for the run's
// target. The header is lexed and parsed at most once per process
// (libc.Prelude) and its declarations are shared, immutable, across runs —
// the engine never mutates the interned structs, it memoizes layouts on the
// side.
func parseUnit(filename, src string, noLibc bool, target ctypes.Target) (*cast.File, *corec.Program, error) {
	layout := ctypes.NewEngine(target)
	var pre *cparse.Prelude
	if !noLibc {
		p, err := libc.Prelude()
		if err != nil {
			return nil, nil, err
		}
		pre = p
	}
	file, err := cparse.ParseFilesWithLayout(pre, []cparse.NamedSource{{Name: filename, Src: src}}, layout)
	if err != nil {
		return nil, nil, err
	}
	prog, err := corec.NormalizeWith(file, layout)
	if err != nil {
		return nil, nil, err
	}
	return file, prog, nil
}

// Prepare parses and normalizes a translation unit (with the libc contract
// header unless noLibc) under the packed Paper32 model, for callers that
// drive individual phases (e.g. contract derivation).
func Prepare(filename, src string, noLibc bool) (*corec.Program, error) {
	_, prog, err := parseUnit(filename, src, noLibc, ctypes.Paper32)
	return prog, err
}

// runCounters aggregates per-worker cache statistics and the run's
// precision-drop count (replacing the former process-global counter in
// internal/polyhedra).
type runCounters struct {
	ptHits, ptMisses      atomic.Int64
	ptEvict               atomic.Int64
	drops                 atomic.Int64
	arenaBytes            atomic.Int64
	selSparse, selDense   atomic.Int64
	memResolved, memHavoc atomic.Int64
	cacheHits, cacheReval atomic.Int64
	cacheMiss             atomic.Int64
	cacheStores           atomic.Int64
	cacheBad, cacheRej    atomic.Int64
	fixIters              atomic.Int64
}

// AnalyzeSource runs CSSV on a single translation unit given as text.
//
// Procedures are analyzed independently (possibly concurrently, see
// Options.Workers) against shared immutable inputs: the parsed AST, the
// normalized program, and memoized pure results (parsed libc header,
// whole-program pointer analysis). Report.Procs is always in input order
// and its contents are identical for every worker count; on failure the
// first error in procedure order wins (when several procedures fail
// concurrently, the lowest-index failure that was observed) and in-flight
// workers are cancelled at their next phase boundary.
func AnalyzeSource(filename, src string, opts Options) (*Report, error) {
	start := time.Now()
	libcCached := !opts.NoLibc && libc.PreludeCached()
	file, prog, err := parseUnit(filename, src, opts.NoLibc, opts.Target)
	if err != nil {
		return nil, err
	}

	procs := opts.Procs
	if procs == nil {
		for _, fd := range prog.File.Funcs() {
			if !libc.Functions[fd.Name] {
				procs = append(procs, fd.Name)
			}
		}
		sort.Strings(procs)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(procs) {
		workers = len(procs)
	}
	if workers < 1 {
		workers = 1
	}
	exclusive := workers == 1

	cc, err := newCacheCtx(filename, src, opts)
	if err != nil {
		return nil, err
	}

	// Scheduler setup: one immutable planner shared by every worker, one
	// recorder per procedure (merged in input order below, so the saved
	// profile is identical for every worker count). The profile is
	// content-addressed by the run configuration, like cache entries; a
	// corrupt profile is logged and replaced by an empty one.
	var planner *schedule.Planner
	var recorders []*schedule.Recorder
	var profPath string
	prof := schedule.NewProfile()
	if opts.Cascade && opts.Schedule != schedule.Off {
		if dir := scheduleProfileDir(opts); dir != "" {
			profPath = schedule.ProfilePath(dir, confFingerprint(opts))
			loaded, perr := schedule.LoadProfile(profPath)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "cssv: schedule profile discarded: %v\n", perr)
			}
			prof = loaded
		}
		planner = schedule.NewPlanner(opts.Schedule, cascadeTierNames(opts), prof)
		recorders = make([]*schedule.Recorder, len(procs))
		for i := range recorders {
			recorders[i] = schedule.NewRecorder()
		}
	}

	rc := &runCounters{}
	results := make([]*ProcReport, len(procs))
	err = runPool(workers, len(procs), func(i int, done <-chan struct{}) error {
		var rec *schedule.Recorder
		if recorders != nil {
			rec = recorders[i]
		}
		pr, err := guardedAnalyzeProc(file, prog, procs[i], opts, cc, rc, planner, rec, exclusive, done)
		if err != nil {
			if err == errCancelled {
				return err
			}
			return fmt.Errorf("%s: %w", procs[i], err)
		}
		results[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	rep.Stats.ScheduleMode = opts.Schedule.String()
	for _, pr := range results {
		rep.Procs = append(rep.Procs, *pr)
		rep.Stats.SequentialCPU += pr.CPU
		if pr.Degraded != nil {
			rep.Stats.DegradedProcs++
			rep.Stats.UnresolvedChecks += pr.Degraded.Unresolved
		}
		if pr.Cascade != nil {
			for _, c := range pr.Cascade.Checks {
				if !c.Violated {
					if rep.Stats.TierDischarged == nil {
						rep.Stats.TierDischarged = map[string]int{}
					}
					rep.Stats.TierDischarged[c.Tier]++
				}
			}
			rep.Stats.ScheduleDecisions += len(pr.Cascade.Sched)
			for _, d := range pr.Cascade.Sched {
				if d.Source == "profile" {
					rep.Stats.ScheduleFromProfile++
				}
			}
		}
	}
	if recorders != nil && profPath != "" {
		for _, r := range recorders {
			prof.Merge(r.Profile())
		}
		if perr := schedule.SaveProfile(profPath, prof); perr != nil {
			fmt.Fprintf(os.Stderr, "cssv: schedule profile not saved: %v\n", perr)
		}
	}
	rep.Stats.Workers = workers
	rep.Stats.Wall = time.Since(start)
	rep.Stats.PointerCacheHits = int(rc.ptHits.Load())
	rep.Stats.PointerCacheMisses = int(rc.ptMisses.Load())
	rep.Stats.LibcHeaderReused = libcCached
	rep.Stats.PrecisionDrops = int(rc.drops.Load())
	rep.Stats.ArenaRecycledBytes = rc.arenaBytes.Load()
	rep.Stats.SparseZoneSelections = rc.selSparse.Load()
	rep.Stats.DenseZoneSelections = rc.selDense.Load()
	rep.Stats.MemberResolved = int(rc.memResolved.Load())
	rep.Stats.MemberHavocked = int(rc.memHavoc.Load())
	rep.Stats.CacheHits = int(rc.cacheHits.Load())
	rep.Stats.CacheRevalidated = int(rc.cacheReval.Load())
	rep.Stats.CacheMisses = int(rc.cacheMiss.Load())
	rep.Stats.CacheStores = int(rc.cacheStores.Load())
	rep.Stats.CacheBadEntries = int(rc.cacheBad.Load())
	rep.Stats.CacheCertRejected = int(rc.cacheRej.Load())
	rep.Stats.PtCacheEvictions = int(rc.ptEvict.Load())
	rep.Stats.FixpointIterations = int(rc.fixIters.Load())
	return rep, nil
}

// scheduleProfileDir resolves where the scheduler persists its outcome
// profile: the explicit override, else alongside the result cache, else
// nowhere (in-memory only).
func scheduleProfileDir(opts Options) string {
	if opts.ScheduleProfile != "" {
		return opts.ScheduleProfile
	}
	if opts.CacheDir != "" {
		return filepath.Join(opts.CacheDir, "schedule")
	}
	return ""
}

// cascadeTierNames mirrors AnalyzeCascade's tier construction: interval,
// zone, octagon when enabled, the final domain last — with any cheap tier
// that coincides with the final domain dropped. The planner's static
// order must match the cascade's or plans would name tiers that never
// run.
func cascadeTierNames(opts Options) []string {
	final := "polyhedra"
	if opts.Domain != nil {
		final = opts.Domain.Name()
	}
	cheap := []string{"interval", "zone"}
	if opts.Octagon {
		cheap = append(cheap, "octagon")
	}
	var names []string
	for _, n := range cheap {
		if n != final {
			names = append(names, n)
		}
	}
	return append(names, final)
}

// guardedAnalyzeProc isolates a panicking per-procedure pipeline: the
// worker recovers, and the procedure is reported as degraded with one
// synthesized unresolved violation, so the run completes (with a nonzero
// message count) instead of crashing. Sibling procedures are unaffected.
func guardedAnalyzeProc(orig *cast.File, prog *corec.Program, name string, opts Options,
	cc *cacheCtx, rc *runCounters, planner *schedule.Planner, rec *schedule.Recorder,
	exclusive bool, done <-chan struct{}) (pr *ProcReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			pr, err = panicReport(name, r, debug.Stack()), nil
		}
	}()
	return analyzeProc(orig, prog, name, opts, cc, rc, planner, rec, exclusive, done)
}

// panicReport builds the conservative report for a procedure whose
// analysis panicked: its checks are unknown, so the procedure is never
// silently "safe" — a single unresolved violation stands in for them.
func panicReport(name string, r any, stack []byte) *ProcReport {
	detail := fmt.Sprint(r)
	return &ProcReport{
		Name: name,
		Violations: []analysis.Violation{analysis.NewUnresolvedViolation(-1,
			fmt.Sprintf("internal error analyzing %s (panic: %s); "+
				"every check of this procedure is unresolved and reported as a potential error",
				name, detail),
			clex.Pos{})},
		Degraded: &Degradation{
			Cause:      "panic",
			Detail:     detail,
			Stack:      string(stack),
			Unresolved: 1,
		},
	}
}

// vacuousOf keeps only the side-effect clause of a contract.
func vacuousOf(fd *cast.FuncDecl) *cast.Contract {
	if fd == nil || fd.Contract == nil {
		return &cast.Contract{}
	}
	return &cast.Contract{Modifies: fd.Contract.Modifies}
}

// withContract returns a program copy where proc's contract is replaced.
func withContract(prog *corec.Program, proc string, ct *cast.Contract) *corec.Program {
	out := &cast.File{Name: prog.File.Name}
	for _, d := range prog.File.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Name != proc {
			out.Decls = append(out.Decls, d)
			continue
		}
		nf := *fd
		nf.Contract = ct
		out.Decls = append(out.Decls, &nf)
	}
	return &corec.Program{
		File:        out,
		Strings:     prog.Strings,
		Layout:      prog.Layout,
		AccessPaths: prog.AccessPaths,
	}
}

// analyzeProc runs the per-procedure pipeline of Fig. 1. It only reads the
// shared orig/prog ASTs (every rewriting phase clones first), so any number
// of instances may run concurrently; done is polled at phase boundaries so
// a failing sibling cancels the pipeline promptly. exclusive marks that no
// sibling runs concurrently, enabling the Space measurement.
func analyzeProc(orig *cast.File, prog *corec.Program, name string, opts Options,
	cc *cacheCtx, rc *runCounters, planner *schedule.Planner, rec *schedule.Recorder,
	exclusive bool, done <-chan struct{}) (*ProcReport, error) {
	var allocBefore uint64
	if exclusive {
		allocBefore = heapAllocBytes()
	}
	start := time.Now()

	pr := &ProcReport{Name: name}
	if fd := orig.Lookup(name); fd != nil && fd.Body != nil {
		pr.LOC = cast.CountLines(cast.FuncString(fd))
	}

	if cancelled(done) {
		return nil, errCancelled
	}

	// Contract-mode preprocessing: replace P's own pre/postcondition.
	switch opts.Contracts {
	case VacuousContracts:
		prog = withContract(prog, name, vacuousOf(prog.File.Lookup(name)))
	case AutoContracts:
		der, err := derive.Derive(prog, name, derive.Options{
			PointerMode:     opts.PointerMode,
			WideningDelay:   opts.WideningDelay,
			NarrowingPasses: opts.NarrowingPasses,
		})
		if err != nil {
			return nil, fmt.Errorf("derive: %w", err)
		}
		ct := &cast.Contract{
			Requires: der.Requires,
			Ensures:  der.Ensures,
			Modifies: der.Modifies,
		}
		prog = withContract(prog, name, ct)
		pr.Derived = der
	}

	// Result-cache lookup. Auto-contract runs are not cached: the derived
	// contract is itself the product of a fixpoint the cache does not
	// capture. On an exact hit (body, configuration, and environment all
	// unchanged) the whole pipeline below — front end included — is
	// skipped.
	var ckey cache.Key
	cacheable := false
	if cc != nil && opts.Contracts != AutoContracts {
		ckey, cacheable = cc.keyFor(prog, name)
	}
	if cacheable {
		if hit := cc.tryHit(ckey, opts, rc); hit != nil {
			hit.CPU = time.Since(start)
			if exclusive {
				hit.Space = heapAllocBytes() - allocBefore
			}
			return hit, nil
		}
	}

	// Phase 1: inline contracts into P, then renormalize.
	inlined, err := inline.File(prog, name)
	if err != nil {
		return nil, fmt.Errorf("inline: %w", err)
	}
	nprog, err := corec.Renormalize(prog, inlined)
	if err != nil {
		return nil, fmt.Errorf("renormalize: %w", err)
	}
	fd := nprog.File.Lookup(name)
	if fd == nil || fd.Body == nil {
		return nil, fmt.Errorf("procedure not found or has no body")
	}
	if err := corec.Validate(fd); err != nil {
		return nil, fmt.Errorf("inlined procedure is not CoreC: %w", err)
	}
	pr.SLOC = cast.CountLines(cast.FuncString(fd))
	pr.Inlined = fd

	if cancelled(done) {
		return nil, errCancelled
	}

	// Phase 2: whole-program flow-insensitive pointer analysis + PPT. The
	// pointer result is memoized process-wide (read-only for all
	// consumers), so procedures whose inlining leaves the global points-to
	// input unchanged — and repeated runs — share one analysis.
	g, hit, evicted := cachedPointerAnalyze(nprog, opts.PointerMode, opts.PtCacheSize)
	if hit {
		rc.ptHits.Add(1)
	} else {
		rc.ptMisses.Add(1)
	}
	if evicted > 0 {
		rc.ptEvict.Add(int64(evicted))
	}
	pt := ppt.Build(nprog, fd, g, opts.PPT)
	pr.PPT = pt

	if cancelled(done) {
		return nil, errCancelled
	}

	// Phase 3: C2IP.
	res, err := c2ip.Transform(nprog, fd, pt, opts.C2IP)
	if err != nil {
		return nil, fmt.Errorf("c2ip: %w", err)
	}
	pr.IP = res.Prog
	pr.Warnings = res.Warnings
	pr.IPVars = res.Prog.NumVars()
	pr.IPSize = res.Prog.Size()
	rc.memResolved.Add(int64(res.MemberResolved))
	rc.memHavoc.Add(int64(res.MemberHavocked))

	if cancelled(done) {
		return nil, errCancelled
	}

	// Certificate-revalidation fast path: a cache entry whose body and
	// configuration match but whose environment changed is reused iff the
	// freshly generated integer program is identical (encoded form,
	// positions included) and every stored certificate re-proves under the
	// independent checker — no fixpoint runs. The side-effect check below
	// still runs fresh: the procedure's own contract may be exactly what
	// changed.
	revalidated := false
	var cachedCerts []*certify.Certificate
	var cachedOutcome *certify.Outcome
	if cacheable {
		revalidated, cachedCerts, cachedOutcome = cc.tryRevalidate(ckey, pr, res.Prog, opts, rc)
		if !revalidated {
			rc.cacheMiss.Add(1)
		}
	}

	var certs []*certify.Certificate
	if !revalidated {
		// Phase 4: integer analysis — a single fixpoint in the configured
		// domain, or the tiered cascade over reduced sub-programs. The budget
		// token (wall-clock deadline measured from the start of this
		// procedure's pipeline, plus the deterministic step budget) and the
		// per-run substrate configs are threaded through the engine and the
		// numeric kernels; a nil token is free.
		var deadline time.Time
		if opts.ProcDeadline > 0 {
			deadline = start.Add(opts.ProcDeadline)
		}
		tok := budget.New(deadline, opts.StepBudget)
		// One arena per procedure, shared by every substrate of this pipeline
		// (single-goroutine by construction) and freed wholesale when the
		// procedure's report is built — the configs, and the arena with them,
		// go out of scope at return.
		var ar *arena.Arena
		if !opts.NoArena {
			ar = arena.New()
		}
		pcfg := &polyhedra.Config{MaxRays: opts.MaxRays, Token: tok, Arena: ar}
		zcfg := &zone.Config{Token: tok, Arena: ar}
		// Certificates are exported whenever the result may be cached, not
		// only under Options.Certify: revalidating a stored entry later
		// requires its certificates. The flag is result-neutral — it only
		// makes the engine export what it already proved.
		aopts := analysis.Options{
			Domain:          analysis.WithSubstrate(opts.Domain, pcfg, zcfg),
			WideningDelay:   opts.WideningDelay,
			NarrowingPasses: opts.NarrowingPasses,
			Certify:         opts.Certify || cacheable,
			Token:           tok,
			ZoneConfig:      zcfg,
			Octagon:         opts.Octagon,
			Planner:         planner,
			Recorder:        rec,
		}
		var exhausted string
		if opts.Cascade {
			cres, err := analysis.AnalyzeCascade(res.Prog, aopts)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			pr.Violations = cres.Violations
			pr.Iterations = cres.Iterations
			pr.Cascade = cres
			certs = cres.Certificates
			exhausted = cres.Exhausted
		} else {
			ares, err := analysis.Analyze(res.Prog, aopts)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			pr.Violations = ares.Violations
			pr.Iterations = ares.Iterations
			if opts.Certify || cacheable {
				certs = analysis.CertifyResult(ares, aopts)
			}
			exhausted = ares.Exhausted
		}
		rc.fixIters.Add(int64(pr.Iterations))
		// Ray-cap drops are counted per run; budget-induced constraint drops
		// are timing-dependent and deliberately uncounted (determinism).
		rc.drops.Add(pcfg.DroppedConstraints())
		rc.arenaBytes.Add(ar.Recycled())
		sparseSel, denseSel := zcfg.SparseSelections()
		rc.selSparse.Add(sparseSel)
		rc.selDense.Add(denseSel)
		if exhausted != "" {
			unresolved := 0
			for _, v := range pr.Violations {
				if v.Unresolved {
					unresolved++
				}
			}
			pr.Degraded = &Degradation{
				Cause: exhausted,
				Detail: fmt.Sprintf("analysis budget exhausted (%s); %d check(s) unresolved",
					exhausted, unresolved),
				Unresolved: unresolved,
			}
			// Certificates from an exhausted run may be partial; skip
			// certification rather than certify against pre-fixpoint iterates.
			certs = nil
		}

		// Phase 4b: a-posteriori certification — verify every discharged
		// check's certificate with the independent Fourier–Motzkin checker and
		// replay every violation through the directed interpreter. Replay runs
		// against the original IP: slices over-approximate executions, so only
		// a trace of the full program is a genuine witness. This happens before
		// the side-effect check appends its (IP-less) violations. A degraded
		// procedure is not certified: its unresolved checks have no
		// certificates and its counter-examples were never computed.
		if opts.Certify && pr.Degraded == nil {
			if cancelled(done) {
				return nil, errCancelled
			}
			tierOf := map[int]string{}
			if pr.Cascade != nil {
				for _, c := range pr.Cascade.Checks {
					if c.Violated {
						tierOf[c.Index] = c.Tier
					}
				}
			} else {
				dom := opts.Domain
				if dom == nil {
					dom = analysis.PolyDomain{}
				}
				for _, v := range pr.Violations {
					tierOf[v.Index] = dom.Name()
				}
			}
			pr.Certification = certifyProc(res.Prog, certs, pr.Violations, tierOf)
		}
	}

	// nAnalysis separates the analysis-produced violations from the
	// side-effect ones appended below; the cache stores the two lists
	// separately (a revalidation replays only the former).
	nAnalysis := len(pr.Violations)

	// Side-effect verification (the modifies clause is part of the
	// contract and is checked like the pre/postconditions).
	if !opts.NoSideEffectCheck {
		if origFd := prog.File.Lookup(name); origFd != nil {
			pr.Violations = append(pr.Violations,
				checkSideEffects(fd, pt, origFd.Contract)...)
		}
	}

	// Store (or, after a revalidation, refresh under the new key, so the
	// next identical run exact-hits). Degraded results are never cached:
	// they depend on budgets and timing, and their checks are unresolved.
	if cacheable && pr.Degraded == nil {
		outcome := pr.Certification
		storeCerts := certs
		if revalidated {
			// Preserve the stored certification outcome even when this run
			// did not request certification, so the refreshed entry stays
			// usable for certifying runs.
			outcome = cachedOutcome
			storeCerts = cachedCerts
		}
		cc.put(ckey, pr, nAnalysis, res.MemberResolved, res.MemberHavocked, storeCerts, outcome, rc)
		if !revalidated {
			pr.CacheStatus = "stored"
		}
	} else if cc != nil && pr.CacheStatus == "" {
		pr.CacheStatus = "uncached"
	}

	pr.CPU = time.Since(start)
	if exclusive {
		pr.Space = heapAllocBytes() - allocBefore
	}
	return pr, nil
}
