package core

import "runtime/metrics"

// heapAllocBytes reads the process-wide cumulative heap allocation counter.
// Unlike runtime.ReadMemStats it does not stop the world, and unlike a
// TotalAlloc delta it is explicitly documented as monotone, so a delta
// around a computation is exactly the bytes the process allocated while it
// ran. Attribution to one procedure is only meaningful when that procedure
// runs exclusively: the driver measures Space with Workers == 1 and reports
// 0 under concurrency (see ProcReport.Space).
func heapAllocBytes() uint64 {
	s := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
