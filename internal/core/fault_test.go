package core

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// panicDomain is a fault-injection domain: every state construction
// panics, simulating an internal analyzer bug inside one procedure's
// pipeline. WithSubstrate leaves unknown domains untouched, so the
// injected fault survives the per-run substrate configuration.
type panicDomain struct{ analysis.PolyDomain }

func (panicDomain) Name() string { return "panic-inject" }

func (panicDomain) Universe(n int) analysis.State {
	panic("injected fault: universe constructor exploded")
}

const faultSrc = `
char buf[8];
void alpha(void) { buf[0] = 'a'; }
void beta(void)  { buf[1] = 'b'; }
void gamma(void) { buf[2] = 'c'; }
`

// faultStrip projects a report onto its deterministic fields: timing
// (CPU, Space, tier CPU), scheduler-dependent data (panic stacks) and
// derived heavyweight structures are removed so reports from different
// worker counts can be compared with reflect.DeepEqual.
func faultStrip(rep *Report) []ProcReport {
	out := make([]ProcReport, len(rep.Procs))
	for i, p := range rep.Procs {
		p.CPU, p.Space = 0, 0
		p.IP, p.Inlined, p.PPT, p.Derived = nil, nil, nil, nil
		p.Certification = nil
		if p.Degraded != nil {
			d := *p.Degraded
			d.Stack = ""
			p.Degraded = &d
		}
		if p.Cascade != nil {
			c := *p.Cascade
			c.Tiers = append([]analysis.TierStat(nil), c.Tiers...)
			for j := range c.Tiers {
				c.Tiers[j].CPU = 0
			}
			c.Certificates = nil
			c.Residual = nil
			p.Cascade = &c
		}
		out[i] = p
	}
	return out
}

func readAirbus(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/airbus/airbus.c")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestFaultPanicIsolation: a panic inside one procedure's analysis never
// crashes the run. Every affected procedure is reported degraded with an
// unresolved violation (never silently "safe"), and the report is
// identical for the sequential and the concurrent driver.
func TestFaultPanicIsolation(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		FlushCaches()
		rep, err := AnalyzeSource("t.c", faultSrc, Options{
			Workers: workers,
			Domain:  panicDomain{},
		})
		if err != nil {
			t.Fatalf("workers=%d: run failed instead of isolating the panic: %v", workers, err)
		}
		return rep
	}
	seq := run(1)
	if len(seq.Procs) != 3 {
		t.Fatalf("got %d procs, want 3", len(seq.Procs))
	}
	for i := range seq.Procs {
		pr := &seq.Procs[i]
		if pr.Degraded == nil || pr.Degraded.Cause != "panic" {
			t.Fatalf("%s: Degraded = %+v, want cause panic", pr.Name, pr.Degraded)
		}
		if pr.Degraded.Stack == "" {
			t.Errorf("%s: panic diagnostic has no stack", pr.Name)
		}
		if !strings.Contains(pr.Degraded.Detail, "injected fault") {
			t.Errorf("%s: Detail = %q, want the panic value", pr.Name, pr.Degraded.Detail)
		}
		if len(pr.Violations) == 0 {
			t.Fatalf("%s: panicking procedure reported no violations (silently safe)", pr.Name)
		}
		v := pr.Violations[0]
		if !v.Unresolved || v.Index != -1 || !strings.Contains(v.Msg, "panic") {
			t.Errorf("%s: synthesized violation = %+v", pr.Name, v)
		}
	}
	if seq.Stats.DegradedProcs != 3 || seq.Stats.UnresolvedChecks != 3 {
		t.Errorf("Stats degraded=%d unresolved=%d, want 3/3",
			seq.Stats.DegradedProcs, seq.Stats.UnresolvedChecks)
	}
	par := run(8)
	if !reflect.DeepEqual(faultStrip(seq), faultStrip(par)) {
		t.Errorf("panic reports differ between workers 1 and 8:\n%+v\nvs\n%+v",
			faultStrip(seq), faultStrip(par))
	}
}

// TestFaultStepBudgetDeterministic: step-budget exhaustion is fully
// deterministic — the same tiny budget produces byte-identical degraded
// reports for workers 1 and 8, and every degraded procedure's checks are
// unresolved, not silently dropped.
func TestFaultStepBudgetDeterministic(t *testing.T) {
	src := readAirbus(t)
	run := func(workers int) *Report {
		t.Helper()
		FlushCaches()
		rep, err := AnalyzeSource("airbus.c", src, Options{
			Workers:    workers,
			StepBudget: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	for i := range seq.Procs {
		pr := &seq.Procs[i]
		if pr.Degraded == nil || pr.Degraded.Cause != "step-budget" {
			t.Fatalf("%s: Degraded = %+v, want cause step-budget", pr.Name, pr.Degraded)
		}
		unresolved := 0
		for _, v := range pr.Violations {
			if v.Unresolved {
				unresolved++
			}
		}
		if unresolved == 0 {
			t.Errorf("%s: degraded but no unresolved violations", pr.Name)
		}
		if unresolved != pr.Degraded.Unresolved {
			t.Errorf("%s: Degraded.Unresolved = %d, %d unresolved violations",
				pr.Name, pr.Degraded.Unresolved, unresolved)
		}
	}
	if seq.Stats.DegradedProcs != len(seq.Procs) {
		t.Errorf("DegradedProcs = %d, want %d", seq.Stats.DegradedProcs, len(seq.Procs))
	}
	par := run(8)
	if !reflect.DeepEqual(faultStrip(seq), faultStrip(par)) {
		t.Errorf("step-budget reports differ between workers 1 and 8")
	}
}

// TestFaultDeadlineExpired: an already-expired wall-clock deadline (the
// deterministic limit case of a timeout) degrades every procedure at its
// first budget poll; the run completes and is worker-count independent.
func TestFaultDeadlineExpired(t *testing.T) {
	src := readAirbus(t)
	run := func(workers int) *Report {
		t.Helper()
		FlushCaches()
		rep, err := AnalyzeSource("airbus.c", src, Options{
			Workers:      workers,
			ProcDeadline: time.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	for i := range seq.Procs {
		pr := &seq.Procs[i]
		if pr.Degraded == nil || pr.Degraded.Cause != "deadline" {
			t.Fatalf("%s: Degraded = %+v, want cause deadline", pr.Name, pr.Degraded)
		}
	}
	par := run(8)
	if !reflect.DeepEqual(faultStrip(seq), faultStrip(par)) {
		t.Errorf("deadline reports differ between workers 1 and 8")
	}
}

// TestFaultDeadlineMillisecond: a realistic 1ms deadline — some
// procedures may finish under it, others not — always completes without
// crashing, and whatever degrades is reported unresolved.
func TestFaultDeadlineMillisecond(t *testing.T) {
	rep, err := AnalyzeSource("airbus.c", readAirbus(t), Options{
		Workers:      8,
		ProcDeadline: time.Millisecond,
		Cascade:      true,
	})
	if err != nil {
		t.Fatalf("1ms-deadline run failed: %v", err)
	}
	for i := range rep.Procs {
		pr := &rep.Procs[i]
		if pr.Degraded == nil {
			continue
		}
		if pr.Degraded.Cause != "deadline" {
			t.Errorf("%s: Cause = %q, want deadline", pr.Name, pr.Degraded.Cause)
		}
		unresolved := 0
		for _, v := range pr.Violations {
			if v.Unresolved {
				unresolved++
			}
		}
		if unresolved != pr.Degraded.Unresolved {
			t.Errorf("%s: Degraded.Unresolved = %d, %d unresolved violations",
				pr.Name, pr.Degraded.Unresolved, unresolved)
		}
	}
}

// TestFaultDegradationSound: degradation only converts verdicts to
// "unresolved" — it never flips a violated check to safe. Every
// violation of the full-budget run appears in the budgeted run either as
// the same violation or as an unresolved one.
func TestFaultDegradationSound(t *testing.T) {
	src := readAirbus(t)
	FlushCaches()
	full, err := AnalyzeSource("airbus.c", src, Options{Workers: 1, Cascade: true})
	if err != nil {
		t.Fatal(err)
	}
	// A budget between the cheapest and the costliest procedure degrades
	// some procedures and leaves others to complete exactly as in the
	// full run; deriving it from the full run keeps the test robust.
	lo, hi := int(^uint(0)>>1), 0
	for i := range full.Procs {
		if it := full.Procs[i].Iterations; it > 0 {
			if it < lo {
				lo = it
			}
			if it > hi {
				hi = it
			}
		}
	}
	budget := (lo + hi) / 2
	if budget <= lo {
		t.Skipf("iteration counts too uniform (lo=%d hi=%d)", lo, hi)
	}
	FlushCaches()
	capped, err := AnalyzeSource("airbus.c", src, Options{
		Workers: 1, Cascade: true, StepBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := func(v analysis.Violation) string { return v.Pos.String() + "|" + v.Msg }
	degraded := 0
	for i := range full.Procs {
		fp, cp := &full.Procs[i], &capped.Procs[i]
		if fp.Name != cp.Name {
			t.Fatalf("procedure order differs: %s vs %s", fp.Name, cp.Name)
		}
		if cp.Degraded != nil {
			degraded++
		} else if !reflect.DeepEqual(faultStrip(full)[i], faultStrip(capped)[i]) {
			t.Errorf("%s: not degraded but differs from the full run", fp.Name)
		}
		reported := map[string]bool{}
		for _, v := range cp.Violations {
			reported[key(v)] = true
		}
		for _, v := range fp.Violations {
			if !reported[key(v)] {
				t.Errorf("%s: full-run violation %q vanished under a budget (unsound)",
					fp.Name, key(v))
			}
		}
	}
	if degraded == 0 {
		t.Errorf("budget %d (lo=%d hi=%d) degraded no procedure; test exercised nothing",
			budget, lo, hi)
	}
}
