package core

import (
	"os"
	"testing"
)

// The paper (§1.3) claims the algorithm "handles the full spectrum of C
// language constructs, including dynamically allocated structures,
// multi-level arrays, multi-level pointers, function pointers, and
// casting". These tests push each construct through the whole pipeline.

func run(t *testing.T, src, proc string) []string {
	t.Helper()
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{proc}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var msgs []string
	for _, v := range rep.Proc(proc).Violations {
		msgs = append(msgs, v.Msg)
	}
	return msgs
}

func TestSpectrumStructs(t *testing.T) {
	src := `
struct line {
    int len;
    char text[32];
};
void clear_line(struct line *l)
    requires (is_within_bounds(l) && alloc(l) >= 36 && offset(l) == 0)
    modifies (*l)
{
    l->len = 0;
    l->text[0] = '\0';
}
void smash_line(struct line *l)
    requires (is_within_bounds(l) && alloc(l) >= 36 && offset(l) == 0)
    modifies (*l)
{
    l->text[32] = 'x';
}
`
	if msgs := run(t, src, "clear_line"); len(msgs) != 0 {
		t.Errorf("safe struct writes flagged: %v", msgs)
	}
	if msgs := run(t, src, "smash_line"); len(msgs) == 0 {
		t.Error("off-the-end struct field write missed")
	}
}

func TestSpectrumDynamicStructs(t *testing.T) {
	src := `
void *malloc(int n);
struct node {
    int tag;
    char name[12];
};
int make_node(int tag)
    requires (tag >= 0)
    ensures (return_value >= 0)
{
    struct node *n;
    n = (struct node*)malloc(16);
    n->tag = tag;
    n->name[0] = '\0';
    return 0;
}
`
	if msgs := run(t, src, "make_node"); len(msgs) != 0 {
		t.Errorf("heap struct init flagged: %v", msgs)
	}
}

func TestSpectrumMultiLevelArrays(t *testing.T) {
	src := `
void fill_grid(int v)
    requires (v >= 0)
{
    char grid[4][8];
    grid[3][7] = 'x';
}
void smash_grid(int v)
    requires (v >= 0)
{
    char grid[4][8];
    grid[3][8] = 'x';
}
`
	if msgs := run(t, src, "fill_grid"); len(msgs) != 0 {
		t.Errorf("in-bounds 2D write flagged: %v", msgs)
	}
	// grid[3][8] lands at byte 32 of a 32-byte region: out of bounds.
	if msgs := run(t, src, "smash_grid"); len(msgs) == 0 {
		t.Error("2D overflow missed")
	}
}

func TestSpectrumMultiLevelPointers(t *testing.T) {
	src := `
void deep(char ***ppp)
    requires (is_within_bounds(**ppp) && alloc(**ppp) >= 1)
    modifies (strlen(**ppp)), (is_nullt(**ppp))
    ensures (is_nullt(**ppp))
{
    char **pp;
    char *p;
    pp = *ppp;
    p = *pp;
    *p = '\0';
}
`
	if msgs := run(t, src, "deep"); len(msgs) != 0 {
		t.Errorf("three-level pointer chain flagged: %v", msgs)
	}
}

func TestSpectrumFunctionPointers(t *testing.T) {
	src := `
void term_here(char *p)
    requires (is_within_bounds(p) && alloc(p) >= 1)
    modifies (p)
    ensures (is_nullt(p))
{
    *p = '\0';
}
void via_pointer(char *buf, int sel)
    requires (is_within_bounds(buf) && alloc(buf) >= 1)
    modifies (buf)
{
    void (*op)(char *);
    op = &term_here;
    op(buf);
}
`
	if msgs := run(t, src, "via_pointer"); len(msgs) != 0 {
		t.Errorf("call through function pointer flagged: %v", msgs)
	}
}

func TestSpectrumCasting(t *testing.T) {
	// Pointer-to-pointer casts keep offsets; int round-trips are
	// conservatively havocked (§3.4.2.3), so the deref can no longer be
	// verified — a message, not a crash.
	src := `
void ptr_cast(char *p)
    requires (is_within_bounds(p) && alloc(p) >= 4)
    modifies (p)
{
    char *q;
    q = (char*)p;
    *q = 'x';
}
void int_roundtrip(char *p)
    requires (is_within_bounds(p) && alloc(p) >= 4)
    modifies (p)
{
    int addr;
    char *q;
    addr = (int)p;
    q = (char*)addr;
    *q = 'x';
}
`
	if msgs := run(t, src, "ptr_cast"); len(msgs) != 0 {
		t.Errorf("same-type cast flagged: %v", msgs)
	}
	if msgs := run(t, src, "int_roundtrip"); len(msgs) == 0 {
		t.Error("int round-trip should be conservatively flagged")
	}
}

func TestSpectrumUnions(t *testing.T) {
	src := `
union cell {
    int i;
    char bytes[4];
};
void poke(union cell *c)
    requires (is_within_bounds(c) && alloc(c) >= 4 && offset(c) == 0)
    modifies (*c)
{
    c->bytes[3] = 1;
}
`
	if msgs := run(t, src, "poke"); len(msgs) != 0 {
		t.Errorf("union byte write flagged: %v", msgs)
	}
}

func TestSpectrumRecursion(t *testing.T) {
	// Each potentially recursive procedure is analyzed separately, exactly
	// once (paper §1.1): the recursive call is handled through the
	// procedure's own contract.
	src := `
int countdown(int n)
    requires (n >= 0)
    ensures (return_value == 0)
{
    if (n == 0) return 0;
    return countdown(n - 1);
}
`
	if msgs := run(t, src, "countdown"); len(msgs) != 0 {
		t.Errorf("recursive procedure flagged: %v", msgs)
	}
}

// TestUnificationModeSound: with the coarser Steensgaard-style pointer
// analysis, the off-by-one of the running example is still caught (the
// pointer analysis is interchangeable as long as it is sound, §3.3.2).
func TestUnificationModeSound(t *testing.T) {
	src, err := readRunning()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeSource("skipline.c", src, Options{
		Procs:       []string{"main"},
		PointerMode: 1, // pointer.Unification
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Proc("main").Messages() == 0 {
		t.Error("unification mode missed the off-by-one error")
	}
}

func readRunning() (string, error) {
	b, err := os.ReadFile("../../testdata/running/skipline.c")
	return string(b), err
}
