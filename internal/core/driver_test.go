package core

import (
	"testing"

	"repro/internal/analysis"
)

// runningExample is the paper's Fig. 3 + Fig. 4: SkipLine with its contract
// and the toy main with the off-by-one error at the second SkipLine call.
const runningExample = `
#define SIZE 1024

void SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) &&
              alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}

void main() {
    char buf[SIZE];
    char *r;
    char *s;
    int n;
    r = buf;
    SkipLine(1, &r);
    fgets(r, SIZE - 1, 0);
    n = strlen(r);
    s = r + n;
    SkipLine(1, &s);
}
`

// TestRunningExampleSkipLine: CSSV verifies SkipLine with no false alarms
// (paper §2.3: "CSSV is able to statically verify the absence of string
// errors in this function, without reporting any false alarm").
func TestRunningExampleSkipLine(t *testing.T) {
	rep, err := AnalyzeSource("skipline.c", runningExample, Options{Procs: []string{"SkipLine"}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	pr := rep.Proc("SkipLine")
	if pr == nil {
		t.Fatal("no report for SkipLine")
	}
	for _, v := range pr.Violations {
		t.Errorf("false alarm: %s", analysis.FormatViolation(v, pr.IP.Space))
	}
	if t.Failed() {
		t.Logf("IP:\n%s", pr.IP)
	}
}

// TestRunningExampleMain: CSSV detects the off-by-one error at the second
// SkipLine call in main and reports no other message (paper §2.3).
func TestRunningExampleMain(t *testing.T) {
	rep, err := AnalyzeSource("skipline.c", runningExample, Options{Procs: []string{"main"}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	pr := rep.Proc("main")
	if pr == nil {
		t.Fatal("no report for main")
	}
	if len(pr.Violations) == 0 {
		t.Fatalf("the off-by-one error was missed\nIP:\n%s", pr.IP)
	}
	found := false
	for _, v := range pr.Violations {
		t.Logf("message: %s", analysis.FormatViolation(v, pr.IP.Space))
		if v.Msg == "precondition of SkipLine" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a 'precondition of SkipLine' violation")
	}
	if len(pr.Violations) > 1 {
		t.Errorf("expected exactly one message, got %d", len(pr.Violations))
	}
}
