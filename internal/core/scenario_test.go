package core

import (
	"strings"
	"testing"
)

// TestOmittedPreconditionScenario reproduces paper §2.3: "omitting
// NbLine >= 0 from the precondition of SkipLine yields an error message
// during the analysis of the procedure. The message indicates that the
// postcondition *PtrEndText == pre(*PtrEndText) + NbLine may not hold.
// Interestingly, the counter-example produced by CSSV for this message
// shows that this postcondition does not hold when the value of NbLine is
// negative."
func TestOmittedPreconditionScenario(t *testing.T) {
	src := `
void SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) && alloc(*PtrEndText) > NbLine)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"SkipLine"}})
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Proc("SkipLine")
	var post *struct {
		nbline string
	}
	for _, v := range pr.Violations {
		if !strings.Contains(v.Msg, "postcondition of SkipLine") {
			continue
		}
		for name, val := range v.CounterExample {
			if strings.Contains(name, "NbLine") && strings.HasPrefix(val.RatString(), "-") {
				post = &struct{ nbline string }{val.RatString()}
			}
		}
	}
	if post == nil {
		t.Fatalf("expected a postcondition violation with a negative NbLine counter-example; got %v",
			pr.Violations)
	}
	t.Logf("counter-example NbLine = %s (paper: 'does not hold when the value of NbLine is negative')", post.nbline)
}

// TestStrongerPreconditionScenario reproduces the follow-up: "requiring in
// the precondition of SkipLine that *PtrEndText points-to a null-terminated
// string will cause an error message regarding the call to SkipLine at line
// [2] of main" (buf is freshly declared, not yet a string).
func TestStrongerPreconditionScenario(t *testing.T) {
	src := `
void SkipLine(int NbLine, char **PtrEndText)
    requires (is_nullt(*PtrEndText) &&
              alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText))
{
    char *PtrEndLoc;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
void main() {
    char buf[64];
    char *r;
    r = buf;
    SkipLine(1, &r);
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"main"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Proc("main").Violations {
		if strings.Contains(v.Msg, "precondition of SkipLine") {
			found = true
		}
	}
	if !found {
		t.Errorf("over-strong precondition not flagged at the call site: %v",
			rep.Proc("main").Violations)
	}
}
