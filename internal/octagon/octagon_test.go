package octagon

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/linear"
	"repro/internal/polyhedra"
	"repro/internal/zone"
)

func expr(c int64, terms ...int64) linear.Expr {
	e := linear.ConstExpr(c)
	for i := 0; i+1 < len(terms); i += 2 {
		e.AddTerm(int(terms[i+1]), terms[i])
	}
	return e
}

func ge(c int64, terms ...int64) linear.Constraint { return linear.NewGe(expr(c, terms...)) }

func ratStr(r *big.Rat) string {
	if r == nil {
		return "inf"
	}
	return r.RatString()
}

// TestOctagonSumConstraints: the defining capability — x + y bounds that
// zones cannot express.
func TestOctagonSumConstraints(t *testing.T) {
	o := Universe(nil, 2)
	o = o.MeetConstraint(ge(10, -1, 0, -1, 1)) // x + y <= 10
	o = o.MeetConstraint(ge(-2, 1, 0))         // x >= 2
	o = o.MeetConstraint(ge(-3, 1, 1))         // y >= 3
	if o.IsEmpty() {
		t.Fatal("satisfiable octagon reported empty")
	}
	// Strong closure must derive x <= 7 and y <= 8 from the sum bound.
	if !o.Entails(ge(7, -1, 0)) {
		t.Error("x <= 7 not derived from x+y <= 10 && y >= 3")
	}
	if !o.Entails(ge(8, -1, 1)) {
		t.Error("y <= 8 not derived from x+y <= 10 && x >= 2")
	}
	if o.Entails(ge(6, -1, 0)) {
		t.Error("x <= 6 must not be entailed")
	}
	// x + y >= 5 follows from the unary lower bounds.
	if !o.Entails(ge(-5, 1, 0, 1, 1)) {
		t.Error("x + y >= 5 not derived")
	}
	if zone.Universe(2).MeetConstraint(ge(10, -1, 0, -1, 1)).Entails(ge(10, -1, 0, -1, 1)) {
		t.Error("sanity: the zone domain should NOT capture x + y <= 10")
	}
}

// TestOctagonRationalEmptiness: 2x <= 1 && 2x >= 1 has the rational
// solution x = 1/2; with odd doubled bounds the ceiling strengthening
// must keep it non-empty (floor halving would wrongly derive x <= 0 &&
// x >= 1 = empty is the classic unsoundness; conversely a genuine
// contradiction must still be caught on the raw sums).
func TestOctagonRationalEmptiness(t *testing.T) {
	o := Universe(nil, 1)
	// x <= 1/2 is not directly expressible via integer constraints, so
	// drive the doubled cells through an intermediate: x + y <= 1, x - y
	// <= 0, y - x <= 0 gives 2x <= 1 after closure.
	o2 := Universe(nil, 2)
	o2 = o2.MeetConstraint(ge(1, -1, 0, -1, 1)) // x + y <= 1
	o2 = o2.MeetConstraint(ge(0, -1, 0, 1, 1))  // x <= y
	o2 = o2.MeetConstraint(ge(0, 1, 0, -1, 1))  // y <= x
	if o2.IsEmpty() {
		t.Fatal("x = y, x + y <= 1 is rationally satisfiable (x = 1/2)")
	}
	_, hi := o2.Bounds(0)
	if hi == nil || hi.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("upper bound of x: got %s, want 1/2", ratStr(hi))
	}
	// And the genuine contradiction: additionally x + y >= 2.
	o3 := o2.MeetConstraint(ge(-2, 1, 0, 1, 1))
	if !o3.IsEmpty() {
		t.Fatal("x + y <= 1 && x + y >= 2 must be empty")
	}
	_ = o
}

// TestOctagonNegationAssign: v := -w + c is exact in the octagon.
func TestOctagonNegationAssign(t *testing.T) {
	o := Universe(nil, 2)
	o = o.MeetConstraint(ge(5, -1, 1)) // w <= 5
	o = o.MeetConstraint(ge(-1, 1, 1)) // w >= 1
	e := linear.ConstExpr(10)
	e.AddTerm(1, -1)
	o = o.Assign(0, e) // v := -w + 10, so v in [5, 9]
	lo, hi := o.Bounds(0)
	if lo == nil || hi == nil || lo.Cmp(big.NewRat(5, 1)) != 0 || hi.Cmp(big.NewRat(9, 1)) != 0 {
		t.Fatalf("v bounds [%s, %s], want [5, 9]", ratStr(lo), ratStr(hi))
	}
	// v + w = 10 must be entailed exactly.
	if !o.Entails(linear.NewEq(expr(-10, 1, 0, 1, 1))) {
		t.Error("v + w = 10 not entailed after v := -w + 10")
	}
}

// octCoef mirrors the zone fuzzer's byte-to-constant mapping, including
// the near-int64-edge cases that force whole-matrix promotion.
func octCoef(b byte) int64 {
	switch b % 16 {
	case 15:
		return 1 << 62
	case 14:
		return -(1 << 62)
	case 13:
		return (1 << 62) + 12345
	default:
		return int64(b%16) - 6
	}
}

// runOctPolyScript interprets data as an op script executed in lockstep
// on an octagon and on a polyhedron, and checks at every step that the
// polyhedron (the more precise domain, exact for all ops used here) is
// included in the octagon: every constraint the octagon claims must be
// entailed by the polyhedron. A violation means the octagon invented a
// bound — unsoundness in the encoding, the coherent tightening, the
// incremental closure underneath, or the strengthening pass.
func runOctPolyScript(t *testing.T, data []byte, cfg *zone.Config) {
	t.Helper()
	const dim = 3
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	constraint := func() linear.Constraint {
		c := octCoef(next())
		a := int(next()) % dim
		b := (a + 1 + int(next())%(dim-1)) % dim
		var g linear.Constraint
		switch next() % 6 {
		case 0:
			g = ge(c, 1, int64(a))
		case 1:
			g = ge(c, -1, int64(a))
		case 2:
			g = ge(c, 1, int64(a), -1, int64(b))
		case 3:
			g = ge(c, -1, int64(a), 1, int64(b))
		case 4:
			g = ge(c, 1, int64(a), 1, int64(b))
		default:
			g = ge(c, -1, int64(a), -1, int64(b))
		}
		if next()%5 == 0 {
			g.Rel = linear.Eq
		}
		return g
	}
	oct := Universe(cfg, dim)
	poly := (*polyhedra.Config)(nil).Universe(dim)
	check := func(step int, op string) {
		if poly.IsEmpty() {
			return // empty is included in everything
		}
		if oct.IsEmpty() {
			t.Fatalf("step %d (%s): octagon empty but polyhedron is not:\npoly: %s", step, op, poly.String(nil))
		}
		for _, c := range oct.System() {
			if !poly.Entails(c) {
				t.Fatalf("step %d (%s): octagon bound %s not entailed by the polyhedron\noct:  %s\npoly: %s",
					step, op, c.String(nil), oct.String(nil), poly.String(nil))
			}
		}
	}
	for step := 0; step < 12 && pos < len(data); step++ {
		var op string
		switch next() % 5 {
		case 0:
			g := constraint()
			op = fmt.Sprintf("meet %s", g.String(nil))
			oct = oct.MeetConstraint(g)
			poly = poly.MeetSystem(linear.System{g})
		case 1:
			g1, g2 := constraint(), constraint()
			op = "join"
			oct = oct.Join(Universe(cfg, dim).MeetConstraint(g1).MeetConstraint(g2))
			poly = poly.Join((*polyhedra.Config)(nil).Universe(dim).MeetSystem(linear.System{g1, g2}))
		case 2:
			v := int(next()) % dim
			e := linear.ConstExpr(octCoef(next()))
			switch next() % 4 {
			case 0:
				e.AddTerm(v, 1)
			case 1:
				e.AddTerm((v+1)%dim, 1)
			case 2:
				e.AddTerm((v+1)%dim, -1)
			}
			op = fmt.Sprintf("assign v%d", v)
			oct = oct.Assign(v, e)
			poly = poly.Assign(v, e)
		case 3:
			v := int(next()) % dim
			op = fmt.Sprintf("havoc v%d", v)
			oct = oct.Havoc(v)
			poly = poly.Havoc(v)
		case 4:
			g := constraint()
			op = fmt.Sprintf("entails %s", g.String(nil))
			if oct.Entails(g) && !poly.IsEmpty() && !poly.Entails(g) {
				t.Fatalf("step %d: octagon entails %s but the polyhedron does not\noct:  %s\npoly: %s",
					step, g.String(nil), oct.String(nil), poly.String(nil))
			}
		}
		check(step, op)
	}
}

// FuzzOctagonVsPolyhedra: the octagon must never claim a bound the
// polyhedra domain (exact for these ops) refutes, under every matrix
// representation policy.
func FuzzOctagonVsPolyhedra(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{0, 9, 0, 1, 4, 0, 3, 1, 0, 5, 4, 255, 0, 1, 2, 0, 4, 9, 1, 0, 5})
	f.Add([]byte{2, 15, 0, 1, 4, 0, 2, 14, 1, 0, 4, 0, 1, 13, 0, 1, 5, 0})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 6; i++ {
		seed := make([]byte, 10+rng.Intn(40))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		runOctPolyScript(t, data, nil)
		runOctPolyScript(t, data, &zone.Config{Sparse: zone.SparseForce})
		runOctPolyScript(t, data, &zone.Config{PureBig: true})
	})
}

// TestOctagonVsPolyhedra is the deterministic always-on slice of the
// fuzz target, with the arena enabled on the auto-policy runs.
func TestOctagonVsPolyhedra(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		data := make([]byte, 10+rng.Intn(40))
		rng.Read(data)
		runOctPolyScript(t, data, &zone.Config{Arena: arena.New()})
		runOctPolyScript(t, data, &zone.Config{Sparse: zone.SparseForce})
	}
}

// TestOctagonWidenTerminates: an ascending chain under Widen must
// stabilize (the widened matrix is never strengthened in place).
func TestOctagonWidenTerminates(t *testing.T) {
	cur := Universe(nil, 2).MeetConstraint(ge(0, -1, 0, -1, 1)) // x + y <= 0
	for i := 1; i <= 60; i++ {
		nxt := Universe(nil, 2).MeetConstraint(ge(int64(i), -1, 0, -1, 1))
		w := cur.Widen(cur.Join(nxt))
		if w.Includes(cur) && cur.Includes(w) {
			return // stabilized
		}
		cur = w
	}
	t.Fatal("octagon widening failed to stabilize within 60 iterations")
}
