// Package octagon implements the octagon abstract domain of Miné:
// conjunctions of constraints of the forms ±x ± y <= c and ±x <= c. It
// sits strictly between the zone and polyhedra domains in the §3.5
// precision/cost spectrum — it closes the gap on the symmetric patterns
// (x + y <= c, buffer-plus-offset bounds) that zones cannot express,
// at a quarter of the matrix cost of a polyhedron build.
//
// The representation is the classic doubled-variable encoding: an
// octagon over n variables is a difference-bound matrix over 2n nodes,
// where node 2i carries +x_i and node 2i+1 carries -x_i, every
// constraint stored coherently at (a, b) and its mirror (b^1, a^1).
// The matrix itself is the zone package's raw DBM surface, so the
// octagon inherits the hybrid int64/big.Int tiers, the sparse
// adjacency representation, the incremental closure, and the arena
// allocator without reimplementing any of them; what this package adds
// is the literal encoding, the coherent tightenings, and the rational
// strengthening pass (zone.DBM.StrengthenOct) that propagates unary
// bounds through binary ones.
//
// There is no octagon-specific configuration: a *zone.Config governs
// budget polling, kernel tier, representation policy and arena for the
// underlying matrix, exactly as it does for the zone domain.
package octagon

import (
	"math/big"
	"strings"

	"repro/internal/linear"
	"repro/internal/zone"
)

// Oct is an octagon over n program variables, backed by a raw 2n-node
// DBM in the doubled-variable encoding.
type Oct struct {
	n int
	m *zone.DBM
}

// pos and neg map variable v to its two matrix literals.
func pos(v int) int { return 2 * v }
func neg(v int) int { return 2*v + 1 }

// Universe returns the unconstrained octagon over n variables governed
// by cfg (nil = defaults).
func Universe(cfg *zone.Config, n int) *Oct {
	return &Oct{n: n, m: cfg.NewRaw(2 * n)}
}

// Bottom returns the empty octagon over n variables.
func Bottom(cfg *zone.Config, n int) *Oct {
	return &Oct{n: n, m: cfg.RawBottom(2 * n)}
}

// Clone returns a deep copy.
func (o *Oct) Clone() *Oct { return &Oct{n: o.n, m: o.m.Clone()} }

// IsEmpty reports whether the octagon has no points.
func (o *Oct) IsEmpty() bool { return o.m.IsEmpty() }

// closeStrengthen brings the matrix to (budget-permitting) strong
// closure: the shortest-path closure followed by the rational
// strengthening pass.
func (o *Oct) closeStrengthen() {
	o.m.RawClose()
	o.m.StrengthenOct()
}

// tighten imposes node_a - node_b <= c together with its coherent
// mirror (the same constraint read through the negated literals).
func (o *Oct) tighten(a, b int, c *big.Int) {
	o.m.RawTighten(a, b, c)
	if ma, mb := b^1, a^1; ma != a || mb != b {
		o.m.RawTighten(ma, mb, c)
	}
}

var big2 = big.NewInt(2)

// doubled returns 2c (unary bounds are stored doubled: x <= c is
// +x - (-x) <= 2c).
func doubled(c *big.Int) *big.Int { return new(big.Int).Mul(c, big2) }

// MeetConstraint refines with a linear constraint when it has octagon
// shape (at most two variables, unit coefficients, any sign pattern);
// other constraints are soundly ignored.
func (o *Oct) MeetConstraint(c linear.Constraint) *Oct {
	out := o.Clone()
	if out.m.IsEmpty() {
		return out
	}
	out.applyGe(c.E)
	if c.Rel == linear.Eq {
		out.applyGe(c.E.Scale(-1))
	}
	out.closeStrengthen()
	return out
}

// applyGe imposes e >= 0 when e has octagon shape.
func (o *Oct) applyGe(e linear.Expr) {
	vars := e.Vars()
	switch len(vars) {
	case 0:
		if e.Const.Sign() < 0 {
			o.m.MarkEmpty()
		}
	case 1:
		v := vars[0]
		switch k := e.Coef(v); {
		case k.Cmp(big1) == 0: // x + c >= 0: -x <= c
			o.tighten(neg(v), pos(v), doubled(e.Const))
		case k.Cmp(bigM1) == 0: // -x + c >= 0: x <= c
			o.tighten(pos(v), neg(v), doubled(e.Const))
		}
	case 2:
		a, b := vars[0], vars[1]
		ka, kb := e.Coef(a), e.Coef(b)
		switch {
		case ka.Cmp(big1) == 0 && kb.Cmp(bigM1) == 0:
			// x_a - x_b + c >= 0: x_b - x_a <= c
			o.tighten(pos(b), pos(a), e.Const)
		case ka.Cmp(bigM1) == 0 && kb.Cmp(big1) == 0:
			o.tighten(pos(a), pos(b), e.Const)
		case ka.Cmp(big1) == 0 && kb.Cmp(big1) == 0:
			// x_a + x_b + c >= 0: -x_a - x_b <= c
			o.tighten(neg(a), pos(b), e.Const)
		case ka.Cmp(bigM1) == 0 && kb.Cmp(bigM1) == 0:
			// x_a + x_b <= c
			o.tighten(pos(a), neg(b), e.Const)
		}
	}
}

var (
	big1  = big.NewInt(1)
	bigM1 = big.NewInt(-1)
)

// MeetSystem intersects with a conjunction of constraints.
func (o *Oct) MeetSystem(sys linear.System) *Oct {
	cur := o
	for _, c := range sys {
		cur = cur.MeetConstraint(c)
	}
	return cur
}

// Join returns the pointwise least upper octagon (the pointwise bound
// maximum of the two matrices).
func (o *Oct) Join(p *Oct) *Oct { return &Oct{n: o.n, m: o.m.Join(p.m)} }

// Widen drops bounds not stable from o (previous iterate) to p (next).
// The widened matrix is deliberately neither closed nor strengthened:
// re-deriving dropped bounds would defeat termination (Miné §7).
func (o *Oct) Widen(p *Oct) *Oct { return &Oct{n: o.n, m: o.m.Widen(p.m)} }

// Includes reports whether p is contained in o.
func (o *Oct) Includes(p *Oct) bool { return o.m.Includes(p.m) }

// Havoc forgets variable v (both literals).
func (o *Oct) Havoc(v int) *Oct {
	out := o.Clone()
	if out.m.IsEmpty() {
		return out
	}
	out.m.RawClose()
	out.m.DropNode(pos(v))
	out.m.DropNode(neg(v))
	return out
}

// Assign over-approximates v := e. Exact for v := ±w + c (including
// w == v with positive sign) and v := c; other right-hand sides degrade
// to havoc.
func (o *Oct) Assign(v int, e linear.Expr) *Oct {
	if o.IsEmpty() {
		return o.Clone()
	}
	vars := e.Vars()
	// v := v + c: translate both literals (closure-preserving, exact).
	if len(vars) == 1 && vars[0] == v && e.Coef(v).Cmp(big1) == 0 {
		out := o.Clone()
		out.m.RawClose()
		out.m.ShiftOct(pos(v), neg(v), e.Const)
		return out
	}
	out := o.Havoc(v)
	switch {
	case len(vars) == 0: // v := c
		out.tighten(pos(v), neg(v), doubled(e.Const))
		out.tighten(neg(v), pos(v), doubled(new(big.Int).Neg(e.Const)))
	case len(vars) == 1 && vars[0] != v && e.Coef(vars[0]).Cmp(big1) == 0:
		// v := w + c: v - w = c.
		w := vars[0]
		out.tighten(pos(v), pos(w), e.Const)
		out.tighten(pos(w), pos(v), new(big.Int).Neg(e.Const))
	case len(vars) == 1 && vars[0] != v && e.Coef(vars[0]).Cmp(bigM1) == 0:
		// v := -w + c: v + w = c — expressible here, invisible to zones.
		w := vars[0]
		out.tighten(pos(v), neg(w), e.Const)
		out.tighten(neg(v), pos(w), new(big.Int).Neg(e.Const))
	default:
		return out // havoc only
	}
	out.closeStrengthen()
	return out
}

// Entails reports whether every point satisfies c (only octagon-shaped
// constraints can be entailed).
func (o *Oct) Entails(c linear.Constraint) bool {
	if o.IsEmpty() {
		return true
	}
	if c.IsTautology() {
		return true
	}
	o.closeStrengthen()
	if c.Rel == linear.Eq {
		return o.entailsGe(c.E) && o.entailsGe(c.E.Scale(-1))
	}
	return o.entailsGe(c.E)
}

func (o *Oct) entailsGe(e linear.Expr) bool {
	vars := e.Vars()
	switch len(vars) {
	case 0:
		return e.Const.Sign() >= 0
	case 1:
		v := vars[0]
		switch k := e.Coef(v); {
		case k.Cmp(big1) == 0: // need -x <= c
			return o.m.RawCellLE(neg(v), pos(v), doubled(e.Const))
		case k.Cmp(bigM1) == 0: // need x <= c
			return o.m.RawCellLE(pos(v), neg(v), doubled(e.Const))
		}
	case 2:
		a, b := vars[0], vars[1]
		ka, kb := e.Coef(a), e.Coef(b)
		switch {
		case ka.Cmp(big1) == 0 && kb.Cmp(bigM1) == 0:
			return o.m.RawCellLE(pos(b), pos(a), e.Const)
		case ka.Cmp(bigM1) == 0 && kb.Cmp(big1) == 0:
			return o.m.RawCellLE(pos(a), pos(b), e.Const)
		case ka.Cmp(big1) == 0 && kb.Cmp(big1) == 0:
			return o.m.RawCellLE(neg(a), pos(b), e.Const)
		case ka.Cmp(bigM1) == 0 && kb.Cmp(bigM1) == 0:
			return o.m.RawCellLE(pos(a), neg(b), e.Const)
		}
	}
	return false
}

// litTerm adds the value of matrix literal node (±x) scaled by sign to e.
func litTerm(e *linear.Expr, node int, sign int64) {
	if node%2 == 0 {
		e.AddTerm(node/2, sign)
	} else {
		e.AddTerm(node/2, -sign)
	}
}

// System renders the strongly closed octagon as linear constraints.
// Each coherent cell pair is emitted once; unary cells come out with
// coefficient 2 (x <= c is stored as 2x <= 2c), which the rational
// certificate checker handles natively.
func (o *Oct) System() linear.System {
	var sys linear.System
	if o.IsEmpty() {
		return linear.System{linear.NewGe(linear.ConstExpr(-1))}
	}
	o.closeStrengthen()
	size := o.m.RawSize()
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a == b {
				continue
			}
			// Skip the coherent duplicate: (a, b) and (b^1, a^1) encode
			// the same constraint; keep the lexicographically smaller.
			if ma, mb := b^1, a^1; ma < a || (ma == a && mb < b) {
				continue
			}
			c := o.m.RawCell(a, b)
			if c == nil {
				continue
			}
			// val(a) - val(b) <= c  ==>  c - val(a) + val(b) >= 0
			e := linear.NewExpr()
			e.Const.Set(c)
			litTerm(&e, a, -1)
			litTerm(&e, b, 1)
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// Bounds returns the tightest [lo, hi] interval of variable v. Octagon
// unary bounds are stored doubled, so halves are exact rationals here.
func (o *Oct) Bounds(v int) (lo, hi *big.Rat) {
	if o.IsEmpty() || v < 0 || v >= o.n {
		return nil, nil
	}
	o.closeStrengthen()
	if c := o.m.RawCell(neg(v), pos(v)); c != nil { // -2x <= c: x >= -c/2
		lo = new(big.Rat).SetFrac(new(big.Int).Neg(c), big2)
	}
	if c := o.m.RawCell(pos(v), neg(v)); c != nil { // 2x <= c: x <= c/2
		hi = new(big.Rat).SetFrac(c, big2)
	}
	return lo, hi
}

// Sample returns a contained point (greedy, using lower bounds), or nil
// when empty.
func (o *Oct) Sample() []*big.Rat {
	if o.IsEmpty() {
		return nil
	}
	pt := make([]*big.Rat, o.n)
	for v := 0; v < o.n; v++ {
		lo, hi := o.Bounds(v)
		switch {
		case lo != nil:
			pt[v] = lo
		case hi != nil:
			pt[v] = hi
		default:
			pt[v] = new(big.Rat)
		}
	}
	return pt
}

// Key returns a canonical byte-string key of the current matrix (see
// zone.DBM.Key); the prefix keeps octagon keys disjoint from zone keys.
func (o *Oct) Key() (string, bool) {
	k, ok := o.m.Key()
	return "oct\x00" + k, ok
}

// String renders the octagon.
func (o *Oct) String(sp *linear.Space) string {
	if o.IsEmpty() {
		return "false"
	}
	sys := o.System()
	if len(sys) == 0 {
		return "true"
	}
	var parts []string
	for _, c := range sys {
		parts = append(parts, c.String(sp))
	}
	return strings.Join(parts, " && ")
}
