package cparse

import (
	"strings"
	"testing"

	"repro/internal/cast"
)

func TestContractOnPrototypeThenDefinition(t *testing.T) {
	// The contract declared on the prototype carries over to the
	// definition (the paper's .h-file convention, §2.2).
	src := `
int f(int x)
    requires (x >= 0)
    ensures (return_value >= x);
int f(int x) {
    return x + 1;
}
`
	file, err := ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	def := file.Lookup("f")
	if def.Body == nil {
		t.Fatal("definition not found")
	}
	if def.Contract == nil || def.Contract.Requires == nil {
		t.Error("prototype contract lost on the definition")
	}
}

func TestContractMultipleRequires(t *testing.T) {
	// Repeated clauses conjoin.
	src := `
void f(int a, int b)
    requires (a >= 0)
    requires (b >= 0);
`
	file, err := ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	req := file.Lookup("f").Contract.Requires
	if got := cast.ExprString(req); got != "a >= 0 && b >= 0" {
		t.Errorf("conjoined requires = %q", got)
	}
}

func TestContractAttributeErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{
			"void f(char *p) requires (alloc(p, 1) > 0);",
			"exactly one argument",
		},
		{
			"void f(char *p) requires (pre(p) == p);",
			"only meaningful in ensures",
		},
		{
			"int f(void) requires (return_value > 0);",
			"undeclared identifier",
		},
	}
	for _, c := range cases {
		_, err := ParseFile("t.c", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestContractAttributesShadowFunctions(t *testing.T) {
	// Even with a declared strlen function, strlen(e) in a contract is the
	// attribute (contracts cannot contain calls).
	src := `
int strlen(char *s);
void f(char *p)
    requires (is_nullt(p) && strlen(p) < 10)
{
    int n;
    n = strlen(p);
}
`
	file, err := ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Lookup("f")
	// In the contract, strlen(p)'s callee is the bare attribute name (no
	// function type).
	found := false
	cast.WalkExpr(fd.Contract.Requires, func(e cast.Expr) bool {
		if c, ok := e.(*cast.Call); ok && c.FuncName() == "strlen" {
			found = true
			if id := c.Fun.(*cast.Ident); id.Type() != nil {
				t.Error("contract strlen bound to the function, not the attribute")
			}
		}
		return true
	})
	if !found {
		t.Error("strlen attribute not found in contract")
	}
}

func TestTypedefs(t *testing.T) {
	src := `
typedef char *string;
typedef struct pair { int a; int b; } pair_t;
void f(string s, pair_t *p) {
    *s = 'x';
    p->a = 1;
}
`
	file, err := ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Lookup("f")
	if got := fd.Params[0].Type.String(); got != "char*" {
		t.Errorf("typedef expanded to %s", got)
	}
	if got := fd.Params[1].Type.String(); got != "struct pair*" {
		t.Errorf("struct typedef expanded to %s", got)
	}
}

func TestVariadicDeclarations(t *testing.T) {
	src := `int printf(char *format, ...);
void f(char *m) { printf(m); printf(m, 1, 2); }`
	if _, err := ParseFile("t.c", src); err != nil {
		t.Fatalf("variadic call rejected: %v", err)
	}
	// Too few fixed arguments still error.
	bad := `int printf(char *format, ...);
void f(void) { printf(); }`
	if _, err := ParseFile("t.c", bad); err == nil {
		t.Error("missing fixed argument accepted")
	}
}

func TestDoWhileAndCompound(t *testing.T) {
	src := `
void f(int n) {
    int i;
    i = 0;
    do {
        i += 2;
        i *= 1;
        i -= 1;
        i /= 1;
        i %= 97;
    } while (i < n);
}
`
	if _, err := ParseFile("t.c", src); err != nil {
		t.Fatalf("do-while/compound ops rejected: %v", err)
	}
}

func TestGlobalConstInitializers(t *testing.T) {
	if _, err := ParseFile("t.c", "int limit = 4 * 8;"); err != nil {
		t.Errorf("constant global initializer rejected: %v", err)
	}
	if _, err := ParseFile("t.c", "int a; int b = a;"); err == nil {
		t.Error("non-constant global initializer accepted")
	}
}

func TestForwardStructReference(t *testing.T) {
	src := `
struct node;
struct node {
    struct node *next;
    char name[8];
};
void f(struct node *n) {
    n->name[0] = '\0';
}
`
	if _, err := ParseFile("t.c", src); err != nil {
		t.Fatalf("forward struct reference rejected: %v", err)
	}
}
