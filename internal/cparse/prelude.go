package cparse

import (
	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// Prelude is a header parsed once and reused across translation units: the
// declarations it produced plus the parser state (typedefs, struct tags,
// function contracts, global typings) later files need to resolve against
// it. A Prelude is immutable after ParsePrelude returns — ParseFilesWith
// copies the state tables before parsing, and every later pipeline phase
// clones AST nodes before rewriting them — so one Prelude may back any
// number of concurrent parses.
type Prelude struct {
	file     *cast.File
	typedefs map[string]ctypes.Type
	structs  map[string]*ctypes.Struct
	funcs    map[string]*cast.FuncDecl
	globals  map[string]ctypes.Type
}

// File returns the parsed header. Callers must treat it as read-only.
func (p *Prelude) File() *cast.File { return p.file }

// ParsePrelude parses a header in isolation, capturing the resulting parser
// state so ParseFilesWith can continue where it left off.
func ParsePrelude(name, src string) (*Prelude, error) {
	toks, err := tokenizeAll([]NamedSource{{Name: name, Src: src}})
	if err != nil {
		return nil, err
	}
	g := &scope{vars: map[string]ctypes.Type{}}
	p := &parser{
		toks:     toks,
		typedefs: map[string]ctypes.Type{},
		structs:  map[string]*ctypes.Struct{},
		funcs:    map[string]*cast.FuncDecl{},
		globals:  g,
		scope:    g,
	}
	file := &cast.File{Name: name}
	for p.peek().Kind != clex.EOF {
		decls, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		file.Decls = append(file.Decls, decls...)
	}
	return &Prelude{
		file:     file,
		typedefs: p.typedefs,
		structs:  p.structs,
		funcs:    p.funcs,
		globals:  g.vars,
	}, nil
}

// ParseFilesWith parses files as one translation unit that begins with the
// given prelude, exactly as if the prelude's source had been the first
// element of files: prelude declarations and contracts are visible, and the
// returned file starts with the prelude's declarations (shared, not
// re-parsed). A nil prelude makes it equivalent to ParseFiles.
func ParseFilesWith(pre *Prelude, files []NamedSource) (*cast.File, error) {
	return ParseFilesWithLayout(pre, files, nil)
}

// ParseFilesWithLayout is ParseFilesWith with an explicit layout engine used
// to fold sizeof/offsetof and validate bitfields under the run's target data
// model. A nil engine behaves as the packed Paper32 model.
func ParseFilesWithLayout(pre *Prelude, files []NamedSource, layout *ctypes.Engine) (*cast.File, error) {
	if pre == nil {
		return parseFilesLayout(files, layout)
	}
	toks, err := tokenizeAll(files)
	if err != nil {
		return nil, err
	}
	// Seed the parser with copies of the prelude state: later declarations
	// may shadow or extend the tables, and the prelude must stay reusable.
	g := &scope{vars: copyMap(pre.globals)}
	p := &parser{
		toks:     toks,
		typedefs: copyMap(pre.typedefs),
		structs:  copyMap(pre.structs),
		funcs:    copyMap(pre.funcs),
		globals:  g,
		scope:    g,
		layout:   layout,
	}
	file := &cast.File{Name: files[len(files)-1].Name}
	file.Decls = append(make([]cast.Decl, 0, len(pre.file.Decls)+16), pre.file.Decls...)
	for p.peek().Kind != clex.EOF {
		decls, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		file.Decls = append(file.Decls, decls...)
	}
	return file, nil
}

// tokenizeAll lexes several sources into one token stream (the paper's
// .h-plus-.c convention), keeping per-file positions.
func tokenizeAll(files []NamedSource) ([]clex.Token, error) {
	var toks []clex.Token
	for _, f := range files {
		ts, err := clex.Tokenize(f.Name, clex.Preprocess(f.Src))
		if err != nil {
			return nil, err
		}
		toks = append(toks, ts[:len(ts)-1]...) // drop the intermediate EOF
	}
	return append(toks, clex.Token{Kind: clex.EOF}), nil
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
