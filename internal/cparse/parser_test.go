package cparse

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/ctypes"
)

// skipLineSrc is the paper's running example (Fig. 3 + Fig. 4 contract),
// written in the natural C the paper's front end would have seen.
const skipLineSrc = `
#define SIZE 1024

char *fgets(char *s, int n, int stream)
    requires (alloc(s) >= n && n >= 1)
    modifies (s)
    ensures (is_nullt(s) && strlen(s) < n);

int strlen_(char *s)
    requires (is_nullt(s))
    ensures (return_value == strlen(s));

void SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) && alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}

void main() {
    char buf[SIZE];
    char *r;
    char *s;
    r = buf;
    SkipLine(1, &r);
    fgets(r, SIZE - 1, 0);
    s = r + strlen_(r);
    SkipLine(1, &s);
}
`

func TestParseSkipLine(t *testing.T) {
	f, err := ParseFile("skipline.c", skipLineSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sl := f.Lookup("SkipLine")
	if sl == nil || sl.Body == nil {
		t.Fatalf("SkipLine not found or missing body")
	}
	if sl.Contract == nil || sl.Contract.Requires == nil || sl.Contract.Ensures == nil {
		t.Fatalf("SkipLine contract missing: %+v", sl.Contract)
	}
	if len(sl.Contract.Modifies) != 3 {
		t.Errorf("modifies count = %d, want 3", len(sl.Contract.Modifies))
	}
	if len(sl.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(sl.Params))
	}
	if got := sl.Params[1].Type.String(); got != "char**" {
		t.Errorf("PtrEndText type = %s, want char**", got)
	}
	mainFn := f.Lookup("main")
	if mainFn == nil || mainFn.Body == nil {
		t.Fatalf("main not found")
	}
	// buf should be char[1024] after macro expansion.
	var bufType ctypes.Type
	cast.WalkStmt(mainFn.Body, func(s cast.Stmt) bool {
		if ds, ok := s.(*cast.DeclStmt); ok && ds.Decl.Name == "buf" {
			bufType = ds.Decl.DeclType
		}
		return true
	})
	if bufType == nil || bufType.String() != "char[1024]" {
		t.Errorf("buf type = %v, want char[1024]", bufType)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f, err := ParseFile("skipline.c", skipLineSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := cast.Fprint(f)
	f2, err := ParseFile("printed.c", printed)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, printed)
	}
	if cast.Fprint(f2) != printed {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, cast.Fprint(f2))
	}
}

func TestParseDeclarators(t *testing.T) {
	tests := []struct {
		src  string
		name string
		want string
	}{
		{"int x;", "x", "int"},
		{"char *p;", "p", "char*"},
		{"char **pp;", "pp", "char**"},
		{"char buf[16];", "buf", "char[16]"},
		{"char grid[4][8];", "grid", "char[8][4]"},
		{"int *arr[3];", "arr", "int*[3]"},
		{"int (*fp)(int, char*);", "fp", "int (int, char*)*"},
		{"int (*fparr[2])(void);", "fparr", "int ()*[2]"},
	}
	for _, tt := range tests {
		f, err := ParseFile("t.c", tt.src)
		if err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		vd, ok := f.Decls[0].(*cast.VarDecl)
		if !ok {
			t.Errorf("%s: not a VarDecl: %T", tt.src, f.Decls[0])
			continue
		}
		if vd.Name != tt.name || vd.DeclType.String() != tt.want {
			t.Errorf("%s: got %s %s, want %s %s", tt.src, vd.DeclType, vd.Name, tt.want, tt.name)
		}
	}
}

func TestParseStructs(t *testing.T) {
	src := `
struct line {
    char text[80];
    int len;
    struct line *next;
};
int f(struct line *l) {
    l->len = 0;
    l->text[0] = '\0';
    return l->len;
}
`
	f, err := ParseFile("s.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sd, ok := f.Decls[0].(*cast.StructDecl)
	if !ok {
		t.Fatalf("first decl is %T, want StructDecl", f.Decls[0])
	}
	if sd.Type.Size() != 80+4+4 {
		t.Errorf("struct size = %d, want 88", sd.Type.Size())
	}
	if off := sd.Type.Field("len").Offset; off != 80 {
		t.Errorf("len offset = %d, want 80", off)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"int f() { return x; }", "undeclared identifier"},
		{"int f(int a) { a(); return 0; }", "call of non-function"},
		{"int f() { int x; x = *x; return x; }", "cannot dereference"},
		{"int f() { int x; x.y = 1; return 0; }", "member access on non-struct"},
		{"void g(int); int f() { g(1, 2); return 0; }", "wrong number of arguments"},
		{"int f() { 3 = 4; return 0; }", "assignment to non-lvalue"},
	}
	for _, tt := range tests {
		_, err := ParseFile("e.c", tt.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestParseExprTypes(t *testing.T) {
	vars := map[string]ctypes.Type{
		"p": ctypes.PointerTo(ctypes.Char),
		"q": ctypes.PointerTo(ctypes.Char),
		"i": ctypes.Int,
	}
	tests := []struct {
		src  string
		want string
	}{
		{"p + i", "char*"},
		{"p - q", "int"},
		{"*p", "char"},
		{"&p", "char**"},
		{"p < q", "int"},
		{"alloc(p) - offset(p)", "int"},
		{"is_within_bounds(p)", "int"},
		{"strlen(p) == 0", "int"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src, vars)
		if err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		if got := e.Type().String(); got != tt.want {
			t.Errorf("%s: type = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestFoldConst(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 << 4) - 1", 15},
		{"sizeof(int)", 4},
		{"sizeof(char*)", 4},
		{"-5 + 10", 5},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src, nil)
		if err != nil {
			t.Fatalf("%s: %v", tt.src, err)
		}
		v, ok := FoldConst(e)
		if !ok || v != tt.want {
			t.Errorf("%s = %d (ok=%v), want %d", tt.src, v, ok, tt.want)
		}
	}
}
