package cparse

import (
	"testing"

	"repro/internal/cast"
)

const preludeHdr = `
typedef int size_t;
struct pair { int a; int b; };
void *malloc(int n)
    requires (n >= 0);
int strlen(char *s)
    requires (is_nullt(s))
    ensures (return_value == strlen(s) && return_value >= 0);
char *strcpy(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) > strlen(src))
    modifies (dst)
    ensures (is_nullt(dst) && strlen(dst) == pre(strlen(src)));
int g_limit;
`

const preludeUser = `
char buf[16];
int use(char *src)
    requires (is_nullt(src) && alloc(src) > 0)
{
    size_t n;
    struct pair p;
    n = strlen(src);
    p.a = n;
    if (n < 16) { strcpy(buf, src); }
    return g_limit + p.a;
}
`

// TestPreludeEquivalence checks that parsing a header once (ParsePrelude)
// and reusing it (ParseFilesWith) yields a translation unit identical to
// the single-stream parse of both sources.
func TestPreludeEquivalence(t *testing.T) {
	combined, err := ParseFiles([]NamedSource{
		{Name: "hdr.h", Src: preludeHdr},
		{Name: "user.c", Src: preludeUser},
	})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := ParsePrelude("hdr.h", preludeHdr)
	if err != nil {
		t.Fatal(err)
	}
	split, err := ParseFilesWith(pre, []NamedSource{{Name: "user.c", Src: preludeUser}})
	if err != nil {
		t.Fatal(err)
	}
	want, got := cast.Fprint(combined), cast.Fprint(split)
	if want != got {
		t.Errorf("prelude parse differs from single-stream parse\n-- combined --\n%s\n-- with prelude --\n%s", want, got)
	}
	if combined.Name != split.Name {
		t.Errorf("file name %q, want %q", split.Name, combined.Name)
	}
}

// TestPreludeReuse checks that one prelude backs several parses without
// being modified: a user file may shadow a prelude function, and the next
// parse must still see the original contract declaration.
func TestPreludeReuse(t *testing.T) {
	pre, err := ParsePrelude("hdr.h", preludeHdr)
	if err != nil {
		t.Fatal(err)
	}
	before := cast.Fprint(pre.File())
	shadow := `
int strlen(char *s)
    requires (is_nullt(s))
{ return 0; }
`
	f1, err := ParseFilesWith(pre, []NamedSource{{Name: "shadow.c", Src: shadow}})
	if err != nil {
		t.Fatal(err)
	}
	if fd := f1.Lookup("strlen"); fd == nil || fd.Body == nil {
		t.Fatalf("shadowing definition of strlen not found")
	}
	if after := cast.Fprint(pre.File()); after != before {
		t.Errorf("prelude mutated by a parse that shadows one of its functions")
	}
	f2, err := ParseFilesWith(pre, []NamedSource{{Name: "user.c", Src: preludeUser}})
	if err != nil {
		t.Fatal(err)
	}
	if fd := f2.Lookup("strlen"); fd == nil || fd.Body != nil || fd.Contract == nil {
		t.Fatalf("second parse no longer sees the prelude's contract prototype")
	}
	if nil == f2.Lookup("use") {
		t.Fatalf("second parse lost the user code")
	}
}
