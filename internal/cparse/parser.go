// Package cparse parses the C subset that CSSV analyzes (paper §2.1) plus
// the contract clauses of §2.2, producing a typed cast.File.
//
// The grammar covers what the paper's tool handles: multi-level pointers
// and arrays, structs and unions, casts, function pointers, all C control
// flow, malloc/alloca, and contract attributes in function-call syntax
// (alloc(e), strlen(e), is_nullt(e), offset(e), base(e),
// is_within_bounds(e), pre(e), return_value).
package cparse

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// Error is a parse or type error with a source position.
type Error struct {
	Pos clex.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// AttributeNames are the contract-language attributes of paper Table 1
// (function-call syntax) plus the is_within_bounds shorthand and pre().
var AttributeNames = map[string]bool{
	"base": true, "offset": true, "is_nullt": true, "strlen": true,
	"alloc": true, "is_within_bounds": true, "pre": true,
}

// ReturnValueName is the designated contract variable for a function's
// return value (paper §2.2).
const ReturnValueName = cast.ReturnValueName

type scope struct {
	vars   map[string]ctypes.Type
	parent *scope
}

func (s *scope) lookup(name string) (ctypes.Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *scope) declare(name string, t ctypes.Type) {
	s.vars[name] = t
}

type parser struct {
	toks []clex.Token
	pos  int

	typedefs map[string]ctypes.Type
	structs  map[string]*ctypes.Struct
	funcs    map[string]*cast.FuncDecl

	globals *scope
	scope   *scope

	// inContract permits attribute calls; inEnsures additionally permits
	// pre(e) and return_value.
	inContract  bool
	inEnsures   bool
	contractRet ctypes.Type

	// lastParamNames records the names from the most recently parsed
	// parameter list, so funcRest can pair them with the function type.
	lastParamNames []string

	// layout folds sizeof/offsetof and constant expressions under the run's
	// target data model; nil behaves as the paper's packed 32-bit model.
	layout *ctypes.Engine
}

// sizeOf returns the size of t under the parser's layout engine.
func (p *parser) sizeOf(t ctypes.Type) int { return p.layout.SizeOf(t) }

// ParseFile parses a translation unit. The src is run through the minimal
// preprocessor (clex.Preprocess) first.
func ParseFile(filename, src string) (*cast.File, error) {
	return ParseFiles([]NamedSource{{Name: filename, Src: src}})
}

// NamedSource pairs a file name (for positions) with its contents.
type NamedSource struct {
	Name string
	Src  string
}

// ParseFiles parses several sources as one translation unit (the paper's
// .h-plus-.c convention): declarations and contracts from earlier files are
// visible in later ones, and every token keeps its own file's positions.
func ParseFiles(files []NamedSource) (*cast.File, error) {
	return parseFilesLayout(files, nil)
}

func parseFilesLayout(files []NamedSource, layout *ctypes.Engine) (*cast.File, error) {
	toks, err := tokenizeAll(files)
	if err != nil {
		return nil, err
	}
	return parseTokens(files[len(files)-1].Name, toks, layout)
}

func parseTokens(filename string, toks []clex.Token, layout *ctypes.Engine) (*cast.File, error) {
	g := &scope{vars: map[string]ctypes.Type{}}
	p := &parser{
		toks:     toks,
		typedefs: map[string]ctypes.Type{},
		structs:  map[string]*ctypes.Struct{},
		funcs:    map[string]*cast.FuncDecl{},
		globals:  g,
		scope:    g,
		layout:   layout,
	}
	file := &cast.File{Name: filename}
	for p.peek().Kind != clex.EOF {
		decls, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		file.Decls = append(file.Decls, decls...)
	}
	return file, nil
}

// ParseExpr parses a single expression in isolation (used in tests); names
// resolve against the provided variable typing, and contract attributes are
// permitted.
func ParseExpr(src string, vars map[string]ctypes.Type) (cast.Expr, error) {
	toks, err := clex.Tokenize("<expr>", src)
	if err != nil {
		return nil, err
	}
	g := &scope{vars: map[string]ctypes.Type{}}
	for k, v := range vars {
		g.vars[k] = v
	}
	p := &parser{
		toks:        toks,
		typedefs:    map[string]ctypes.Type{},
		structs:     map[string]*ctypes.Struct{},
		funcs:       map[string]*cast.FuncDecl{},
		globals:     g,
		scope:       g,
		inContract:  true,
		inEnsures:   true,
		contractRet: ctypes.Int,
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != clex.EOF {
		return nil, p.errHere("trailing tokens after expression")
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Token helpers

func (p *parser) peek() clex.Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) clex.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) next() clex.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k clex.Kind) bool {
	if p.peek().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k clex.Kind) (clex.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf(t.Pos, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) errf(pos clex.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errHere(format string, args ...any) error {
	return p.errf(p.peek().Pos, format, args...)
}

// ---------------------------------------------------------------------------
// Types and declarations

func (p *parser) isTypeStart(t clex.Token) bool {
	switch t.Kind {
	case clex.KwVoid, clex.KwChar, clex.KwInt, clex.KwLong, clex.KwShort,
		clex.KwUnsigned, clex.KwSigned, clex.KwStruct, clex.KwUnion,
		clex.KwConst:
		return true
	case clex.Ident:
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// baseType parses declaration specifiers (without storage class) and returns
// the base type.
func (p *parser) baseType() (ctypes.Type, error) {
	for p.accept(clex.KwConst) {
	}
	t := p.peek()
	switch t.Kind {
	case clex.KwVoid:
		p.next()
		return ctypes.Void{}, nil
	case clex.KwChar:
		p.next()
		return ctypes.Char, nil
	case clex.KwInt:
		p.next()
		return ctypes.Int, nil
	case clex.KwLong, clex.KwShort, clex.KwUnsigned, clex.KwSigned:
		// Fold all integer flavors to int or char; the analysis is
		// byte-size oriented and the paper's subset only distinguishes
		// char-sized from word-sized cells.
		name := ""
		isChar := false
		for {
			switch p.peek().Kind {
			case clex.KwLong, clex.KwShort, clex.KwUnsigned, clex.KwSigned, clex.KwInt:
				if name != "" {
					name += " "
				}
				name += p.next().Text
				continue
			case clex.KwChar:
				p.next()
				isChar = true
				name += " char"
			}
			break
		}
		if isChar {
			return ctypes.Char, nil
		}
		_ = name
		return ctypes.Int, nil
	case clex.KwStruct, clex.KwUnion:
		return p.structType()
	case clex.Ident:
		if td, ok := p.typedefs[t.Text]; ok {
			p.next()
			return td, nil
		}
	}
	return nil, p.errf(t.Pos, "expected type, found %s", t)
}

func (p *parser) structType() (ctypes.Type, error) {
	kw := p.next() // struct or union
	isUnion := kw.Kind == clex.KwUnion
	tag := ""
	if p.peek().Kind == clex.Ident {
		tag = p.next().Text
	}
	if !p.accept(clex.LBrace) {
		if tag == "" {
			return nil, p.errf(kw.Pos, "anonymous struct without body")
		}
		if s, ok := p.structs[tag]; ok {
			return s, nil
		}
		// Forward reference; create an incomplete struct.
		s := &ctypes.Struct{Tag: tag, Union: isUnion}
		p.structs[tag] = s
		return s, nil
	}
	var s *ctypes.Struct
	if tag != "" {
		if existing, ok := p.structs[tag]; ok {
			s = existing
		} else {
			s = &ctypes.Struct{Tag: tag, Union: isUnion}
			p.structs[tag] = s
		}
	} else {
		s = &ctypes.Struct{Union: isUnion}
	}
	var fields []ctypes.Field
	for !p.accept(clex.RBrace) {
		// _Alignas(N) raises the member's alignment under ABI-accurate
		// targets (it is a no-op in the packed model).
		alignAs := 0
		if t := p.peek(); p.accept(clex.KwAlignas) {
			if _, err := p.expect(clex.LParen); err != nil {
				return nil, err
			}
			n, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(clex.RParen); err != nil {
				return nil, err
			}
			if n < 1 || n&(n-1) != 0 {
				return nil, p.errf(t.Pos, "_Alignas requires a positive power of two, got %d", n)
			}
			alignAs = int(n)
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		for {
			ft, name, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			fld := ctypes.Field{Name: name, Type: ft, AlignAs: alignAs}
			if t := p.peek(); p.accept(clex.Colon) {
				// Bitfield declarator: member : width.
				w, err := p.constExpr()
				if err != nil {
					return nil, err
				}
				if !ctypes.IsInteger(ft) {
					return nil, p.errf(t.Pos, "bitfield %q requires an integer type, got %s", name, ft)
				}
				max := int64(p.sizeOf(ft)) * 8
				if w < 0 || w > max {
					return nil, p.errf(t.Pos, "bitfield width %d out of range [0, %d]", w, max)
				}
				if w == 0 && name != "" {
					return nil, p.errf(t.Pos, "zero-width bitfield %q must be anonymous", name)
				}
				fld.Bits = int(w)
				fld.Bitfield = true
			}
			if name == "" && !fld.Bitfield {
				return nil, p.errHere("struct field requires a name")
			}
			if name != "" {
				for i := range fields {
					if fields[i].Name == name {
						return nil, p.errHere("duplicate member %q", name)
					}
				}
			}
			fields = append(fields, fld)
			if !p.accept(clex.Comma) {
				break
			}
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
	}
	s.SetFields(fields)
	return s, nil
}

// declarator parses a (possibly abstract) declarator given the base type,
// returning the full type and the declared name ("" for abstract).
func (p *parser) declarator(base ctypes.Type) (ctypes.Type, string, error) {
	t := base
	for p.accept(clex.Star) {
		for p.accept(clex.KwConst) {
		}
		t = ctypes.PointerTo(t)
	}
	return p.directDeclarator(t)
}

// directDeclarator handles the inner part: name, parenthesized declarator,
// and array/function suffixes.
func (p *parser) directDeclarator(t ctypes.Type) (ctypes.Type, string, error) {
	name := ""
	// A parenthesized declarator like (*f) introduces an inner hole that
	// receives the suffix-modified type.
	if p.peek().Kind == clex.LParen && p.isDeclParen() {
		p.next()
		// Parse the inner declarator against a placeholder; we patch the
		// hole after the suffixes are known.
		innerStart := p.pos
		// Skip to matching RParen to find suffixes first.
		depth := 1
		for depth > 0 {
			switch p.next().Kind {
			case clex.LParen:
				depth++
			case clex.RParen:
				depth--
			case clex.EOF:
				return nil, "", p.errHere("unterminated declarator")
			}
		}
		after := p.pos
		suffixed, err := p.declaratorSuffix(t)
		if err != nil {
			return nil, "", err
		}
		end := p.pos
		// Re-parse the inner declarator with the suffixed type as base.
		p.pos = innerStart
		innerT, innerName, err := p.declarator(suffixed)
		if err != nil {
			return nil, "", err
		}
		if p.pos != after-1 {
			return nil, "", p.errHere("malformed declarator")
		}
		p.pos = end
		return innerT, innerName, nil
	}
	if p.peek().Kind == clex.Ident {
		name = p.next().Text
	}
	t2, err := p.declaratorSuffix(t)
	return t2, name, err
}

// isDeclParen distinguishes "(*x)" (declarator grouping) from a parameter
// list "(void)" after an omitted name.
func (p *parser) isDeclParen() bool {
	n := p.peekN(1)
	return n.Kind == clex.Star || n.Kind == clex.LParen ||
		(n.Kind == clex.Ident && !p.isTypeStart(n))
}

func (p *parser) declaratorSuffix(t ctypes.Type) (ctypes.Type, error) {
	switch p.peek().Kind {
	case clex.LBracket:
		p.next()
		if p.accept(clex.RBracket) {
			// Unsized array (parameter position): treat as pointer.
			inner, err := p.declaratorSuffix(t)
			if err != nil {
				return nil, err
			}
			return ctypes.PointerTo(inner), nil
		}
		sz, err := p.constExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RBracket); err != nil {
			return nil, err
		}
		inner, err := p.declaratorSuffix(t)
		if err != nil {
			return nil, err
		}
		return ctypes.Array{Elem: inner, Len: int(sz)}, nil
	case clex.LParen:
		p.next()
		params, variadic, _, err := p.paramList()
		if err != nil {
			return nil, err
		}
		ps := make([]ctypes.Type, len(params))
		for i, prm := range params {
			ps[i] = prm.Type
		}
		return &ctypes.Func{Ret: t, Params: ps, Variadic: variadic}, nil
	}
	return t, nil
}

// paramList parses a parameter list after '(' up to and including ')'.
func (p *parser) paramList() ([]cast.Param, bool, []string, error) {
	var params []cast.Param
	var names []string
	variadic := false
	if p.accept(clex.RParen) {
		p.lastParamNames = names
		return params, false, names, nil
	}
	if p.peek().Kind == clex.KwVoid && p.peekN(1).Kind == clex.RParen {
		p.next()
		p.next()
		p.lastParamNames = names
		return params, false, names, nil
	}
	for {
		if p.peek().Kind == clex.Dot {
			// "..." lexes as three dots.
			if p.peekN(1).Kind == clex.Dot && p.peekN(2).Kind == clex.Dot {
				p.next()
				p.next()
				p.next()
				variadic = true
				break
			}
			return nil, false, nil, p.errHere("unexpected '.'")
		}
		base, err := p.baseType()
		if err != nil {
			return nil, false, nil, err
		}
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, false, nil, err
		}
		// Arrays in parameter position decay to pointers.
		if a, ok := t.(ctypes.Array); ok {
			t = ctypes.PointerTo(a.Elem)
		}
		params = append(params, cast.Param{Name: name, Type: t})
		names = append(names, name)
		if !p.accept(clex.Comma) {
			break
		}
	}
	if _, err := p.expect(clex.RParen); err != nil {
		return nil, false, nil, err
	}
	p.lastParamNames = names
	return params, variadic, names, nil
}

// constExpr evaluates a constant integer expression (array sizes) under the
// parser's layout engine.
func (p *parser) constExpr() (int64, error) {
	e, err := p.ternary()
	if err != nil {
		return 0, err
	}
	v, ok := FoldConstWith(e, p.layout)
	if !ok {
		return 0, p.errf(e.Pos(), "expected constant expression")
	}
	return v, nil
}

// FoldConst evaluates integer constant expressions under the paper's packed
// 32-bit model.
func FoldConst(e cast.Expr) (int64, bool) { return FoldConstWith(e, nil) }

// FoldConstWith evaluates integer constant expressions, folding sizeof via
// the given layout engine (nil means the packed Paper32 model).
func FoldConstWith(e cast.Expr, layout *ctypes.Engine) (int64, bool) {
	FoldConst := func(e cast.Expr) (int64, bool) { return FoldConstWith(e, layout) }
	switch e := e.(type) {
	case *cast.IntLit:
		return e.Value, true
	case *cast.SizeofType:
		return int64(layout.SizeOf(e.Of)), true
	case *cast.Unary:
		v, ok := FoldConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case cast.Neg:
			return -v, true
		case cast.BitNot:
			return ^v, true
		case cast.LogNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *cast.Binary:
		a, ok1 := FoldConst(e.X)
		b, ok2 := FoldConst(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case cast.Add:
			return a + b, true
		case cast.Sub:
			return a - b, true
		case cast.Mul:
			return a * b, true
		case cast.Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case cast.Rem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case cast.Shl:
			return a << uint(b), true
		case cast.Shr:
			return a >> uint(b), true
		case cast.BitAnd:
			return a & b, true
		case cast.BitOr:
			return a | b, true
		case cast.BitXor:
			return a ^ b, true
		}
	case *cast.Cast:
		return FoldConst(e.X)
	}
	return 0, false
}

// topDecl parses one top-level declaration, which may expand to several
// cast.Decls (e.g. "int a, b;").
func (p *parser) topDecl() ([]cast.Decl, error) {
	start := p.peek().Pos

	if p.accept(clex.KwTypedef) {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf(start, "typedef requires a name")
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		p.typedefs[name] = t
		return []cast.Decl{&cast.TypedefDecl{Name: name, Of: t}}, nil
	}

	storage := cast.SCNone
	for {
		if p.accept(clex.KwExtern) {
			storage = cast.SCExtern
			continue
		}
		if p.accept(clex.KwStatic) {
			storage = cast.SCStatic
			continue
		}
		break
	}

	base, err := p.baseType()
	if err != nil {
		return nil, err
	}

	// Bare struct definition: "struct S { ... };"
	if s, ok := base.(*ctypes.Struct); ok && p.accept(clex.Semi) {
		sd := &cast.StructDecl{Type: s}
		return []cast.Decl{sd}, nil
	}

	var decls []cast.Decl
	for {
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errHere("declaration requires a name")
		}
		if ft, ok := t.(*ctypes.Func); ok {
			fd, err := p.funcRest(start, name, ft, storage)
			if err != nil {
				return nil, err
			}
			decls = append(decls, fd)
			if fd.Body != nil {
				return decls, nil
			}
			if p.accept(clex.Comma) {
				continue
			}
			return decls, nil
		}
		vd := &cast.VarDecl{Name: name, DeclType: t, Storage: storage}
		vd.P = start
		p.globals.declare(name, t)
		if p.accept(clex.Assign) {
			// Global initializers are rejected in CoreC but accepted here;
			// the normalizer would need an init function. Keep it simple:
			// only constant scalar initializers, folded away.
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			if _, ok := FoldConst(e); !ok {
				return nil, p.errf(e.Pos(), "only constant global initializers are supported")
			}
		}
		decls = append(decls, vd)
		if !p.accept(clex.Comma) {
			break
		}
	}
	if _, err := p.expect(clex.Semi); err != nil {
		return nil, err
	}
	return decls, nil
}

// funcRest parses the remainder of a function declaration after the
// declarator: optional contract clauses, then a body or ';'.
//
// The declarator has already consumed the parameter list into ft, but we
// need parameter names; re-scan is avoided by tracking the most recent
// param names during declarator parsing — instead, for simplicity the
// grammar requires function declarators at top level to be "name(params)",
// which we re-parse here from the recorded token range.
func (p *parser) funcRest(start clex.Pos, name string, ft *ctypes.Func, storage cast.StorageClass) (*cast.FuncDecl, error) {
	_ = storage
	fd := &cast.FuncDecl{Name: name, Ret: ft.Ret, Variadic: ft.Variadic}
	fd.P = start
	names := p.lastParamNames
	for i, t := range ft.Params {
		nm := ""
		if i < len(names) {
			nm = names[i]
		}
		if nm == "" {
			nm = fmt.Sprintf("__arg%d", i)
		}
		fd.Params = append(fd.Params, cast.Param{Name: nm, Type: t})
	}

	p.globals.declare(name, ft)
	if prev, ok := p.funcs[name]; ok && prev.Contract != nil {
		fd.Contract = prev.Contract
	}

	// Contract clauses.
	ct, err := p.contractClauses(fd)
	if err != nil {
		return nil, err
	}
	if ct != nil {
		fd.Contract = ct
	}

	if p.peek().Kind == clex.LBrace {
		body, err := p.funcBody(fd)
		if err != nil {
			return nil, err
		}
		fd.Body = body
		p.funcs[name] = fd
		return fd, nil
	}
	if _, err := p.expect(clex.Semi); err != nil {
		return nil, err
	}
	if _, ok := p.funcs[name]; !ok || fd.Contract != nil {
		p.funcs[name] = fd
	}
	return fd, nil
}

// contractClauses parses optional requires/modifies/ensures clauses.
func (p *parser) contractClauses(fd *cast.FuncDecl) (*cast.Contract, error) {
	if k := p.peek().Kind; k != clex.KwRequires && k != clex.KwModifies && k != clex.KwEnsures {
		return nil, nil
	}
	// Contract expressions see the formals and globals.
	saved := p.scope
	p.scope = &scope{vars: map[string]ctypes.Type{}, parent: p.globals}
	for _, prm := range fd.Params {
		p.scope.declare(prm.Name, prm.Type)
	}
	defer func() { p.scope = saved }()

	p.inContract = true
	p.contractRet = fd.Ret
	defer func() { p.inContract = false; p.inEnsures = false }()

	ct := &cast.Contract{}
	for {
		switch {
		case p.accept(clex.KwRequires):
			e, err := p.parenExprOrBare()
			if err != nil {
				return nil, err
			}
			ct.Requires = conjoin(ct.Requires, e)
		case p.accept(clex.KwModifies):
			for {
				e, err := p.parenExprOrBare()
				if err != nil {
					return nil, err
				}
				ct.Modifies = append(ct.Modifies, e)
				if !p.accept(clex.Comma) {
					break
				}
			}
		case p.accept(clex.KwEnsures):
			p.inEnsures = true
			e, err := p.parenExprOrBare()
			if err != nil {
				return nil, err
			}
			p.inEnsures = false
			ct.Ensures = conjoin(ct.Ensures, e)
		default:
			return ct, nil
		}
	}
}

func conjoin(a, b cast.Expr) cast.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	c := &cast.Binary{Op: cast.LogAnd, X: a, Y: b}
	c.SetType(ctypes.Int)
	return c
}

// parenExprOrBare parses "( e )" or a bare conditional expression (no
// top-level comma so modifies lists stay unambiguous).
func (p *parser) parenExprOrBare() (cast.Expr, error) {
	if p.peek().Kind == clex.LParen {
		// A parenthesized expression; but "(e)" could also be the start of
		// a longer expression like "(a) + b" — parse a full conditional
		// expression and let precedence handle it.
		return p.ternary()
	}
	return p.ternary()
}

func (p *parser) funcBody(fd *cast.FuncDecl) (*cast.Block, error) {
	saved := p.scope
	p.scope = &scope{vars: map[string]ctypes.Type{}, parent: p.globals}
	for _, prm := range fd.Params {
		p.scope.declare(prm.Name, prm.Type)
	}
	p.scope.declare(ReturnValueName, fd.Ret)
	defer func() { p.scope = saved }()
	return p.block()
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) block() (*cast.Block, error) {
	tok, err := p.expect(clex.LBrace)
	if err != nil {
		return nil, err
	}
	b := &cast.Block{}
	b.P = tok.Pos
	saved := p.scope
	p.scope = &scope{vars: map[string]ctypes.Type{}, parent: saved}
	defer func() { p.scope = saved }()
	for !p.accept(clex.RBrace) {
		if p.peek().Kind == clex.EOF {
			return nil, p.errHere("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s...)
	}
	return b, nil
}

// stmt parses one statement; declarations with multiple declarators expand
// to several statements.
func (p *parser) stmt() ([]cast.Stmt, error) {
	t := p.peek()

	// Local declaration?
	if p.isTypeStart(t) && !(t.Kind == clex.Ident && p.peekN(1).Kind == clex.Colon) {
		return p.localDecl()
	}

	switch t.Kind {
	case clex.Semi:
		p.next()
		e := &cast.Empty{}
		e.P = t.Pos
		return []cast.Stmt{e}, nil
	case clex.LBrace:
		b, err := p.block()
		return []cast.Stmt{b}, err
	case clex.KwIf:
		p.next()
		if _, err := p.expect(clex.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RParen); err != nil {
			return nil, err
		}
		then, err := p.oneStmt()
		if err != nil {
			return nil, err
		}
		var els cast.Stmt
		if p.accept(clex.KwElse) {
			els, err = p.oneStmt()
			if err != nil {
				return nil, err
			}
		}
		s := &cast.If{Cond: cond, Then: then, Else: els}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwWhile:
		p.next()
		if _, err := p.expect(clex.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RParen); err != nil {
			return nil, err
		}
		body, err := p.oneStmt()
		if err != nil {
			return nil, err
		}
		s := &cast.While{Cond: cond, Body: body}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwDo:
		p.next()
		body, err := p.oneStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		s := &cast.DoWhile{Body: body, Cond: cond}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwFor:
		return p.forStmt()
	case clex.KwReturn:
		p.next()
		var x cast.Expr
		if p.peek().Kind != clex.Semi {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		s := &cast.Return{X: x}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwBreak:
		p.next()
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		s := &cast.Break{}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwContinue:
		p.next()
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		s := &cast.Continue{}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwGoto:
		p.next()
		lbl, err := p.expect(clex.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		s := &cast.Goto{Label: lbl.Text}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.KwAssert, clex.KwAssume:
		p.next()
		if _, err := p.expect(clex.LParen); err != nil {
			return nil, err
		}
		p.inContract = true
		cond, err := p.expr()
		p.inContract = false
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
		kind := cast.Assert
		if t.Kind == clex.KwAssume {
			kind = cast.Assume
		}
		s := &cast.Verify{Kind: kind, Cond: cond}
		s.P = t.Pos
		return []cast.Stmt{s}, nil
	case clex.Ident:
		if p.peekN(1).Kind == clex.Colon {
			p.next()
			p.next()
			inner, err := p.oneStmt()
			if err != nil {
				return nil, err
			}
			s := &cast.Labeled{Label: t.Text, Stmt: inner}
			s.P = t.Pos
			return []cast.Stmt{s}, nil
		}
	}

	// Expression statement.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(clex.Semi); err != nil {
		return nil, err
	}
	s := &cast.ExprStmt{X: e}
	s.P = t.Pos
	return []cast.Stmt{s}, nil
}

func (p *parser) oneStmt() (cast.Stmt, error) {
	ss, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if len(ss) == 1 {
		return ss[0], nil
	}
	b := &cast.Block{Stmts: ss}
	if len(ss) > 0 {
		b.P = ss[0].Pos()
	}
	return b, nil
}

func (p *parser) localDecl() ([]cast.Stmt, error) {
	start := p.peek().Pos
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	var out []cast.Stmt
	for {
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errHere("declaration requires a name")
		}
		vd := &cast.VarDecl{Name: name, DeclType: t}
		vd.P = start
		p.scope.declare(name, t)
		ds := &cast.DeclStmt{Decl: vd}
		ds.P = start
		if p.accept(clex.Assign) {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			ds.Init = init
		}
		out = append(out, ds)
		if !p.accept(clex.Comma) {
			break
		}
	}
	if _, err := p.expect(clex.Semi); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) forStmt() ([]cast.Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(clex.LParen); err != nil {
		return nil, err
	}
	var init cast.Stmt
	if !p.accept(clex.Semi) {
		if p.isTypeStart(p.peek()) {
			ds, err := p.localDecl()
			if err != nil {
				return nil, err
			}
			if len(ds) == 1 {
				init = ds[0]
			} else {
				b := &cast.Block{Stmts: ds}
				init = b
			}
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			es := &cast.ExprStmt{X: e}
			es.P = e.Pos()
			init = es
			if _, err := p.expect(clex.Semi); err != nil {
				return nil, err
			}
		}
	}
	var cond cast.Expr
	if !p.accept(clex.Semi) {
		var err error
		cond, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.Semi); err != nil {
			return nil, err
		}
	}
	var post cast.Expr
	if p.peek().Kind != clex.RParen {
		var err error
		post, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(clex.RParen); err != nil {
		return nil, err
	}
	body, err := p.oneStmt()
	if err != nil {
		return nil, err
	}
	s := &cast.For{Init: init, Cond: cond, Post: post, Body: body}
	s.P = t.Pos
	return []cast.Stmt{s}, nil
}
