package cparse

import (
	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// expr parses a full expression (assignment level; the comma operator is
// not in the subset).
func (p *parser) expr() (cast.Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (cast.Expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	var op cast.BinaryOp
	switch p.peek().Kind {
	case clex.Assign:
		op = cast.PlainAssign
	case clex.AddEq:
		op = cast.Add
	case clex.SubEq:
		op = cast.Sub
	case clex.MulEq:
		op = cast.Mul
	case clex.DivEq:
		op = cast.Div
	case clex.ModEq:
		op = cast.Rem
	default:
		return lhs, nil
	}
	tok := p.next()
	rhs, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if !isLValue(lhs) {
		return nil, p.errf(tok.Pos, "assignment to non-lvalue")
	}
	a := &cast.Assign{Op: op, LHS: lhs, RHS: rhs}
	a.P = tok.Pos
	a.SetType(ctypes.Decay(lhs.Type()))
	return a, nil
}

func isLValue(e cast.Expr) bool {
	switch e := e.(type) {
	case *cast.Ident:
		return true
	case *cast.Index:
		return true
	case *cast.Member:
		return true
	case *cast.Unary:
		return e.Op == cast.Deref
	}
	return false
}

func (p *parser) ternary() (cast.Expr, error) {
	c, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != clex.Question {
		return c, nil
	}
	tok := p.next()
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(clex.Colon); err != nil {
		return nil, err
	}
	f, err := p.ternary()
	if err != nil {
		return nil, err
	}
	e := &cast.Cond{C: c, Then: t, Else: f}
	e.P = tok.Pos
	e.SetType(ctypes.Decay(t.Type()))
	return e, nil
}

var binOps = map[clex.Kind]cast.BinaryOp{
	clex.Star: cast.Mul, clex.Slash: cast.Div, clex.Percent: cast.Rem,
	clex.Plus: cast.Add, clex.Minus: cast.Sub,
	clex.Shl: cast.Shl, clex.Shr: cast.Shr,
	clex.Lt: cast.Lt, clex.Le: cast.Le, clex.Gt: cast.Gt, clex.Ge: cast.Ge,
	clex.EqEq: cast.Eq, clex.NotEq: cast.Ne,
	clex.Amp: cast.BitAnd, clex.Caret: cast.BitXor, clex.Pipe: cast.BitOr,
	clex.AndAnd: cast.LogAnd, clex.OrOr: cast.LogOr,
}

func binLevel(op cast.BinaryOp) int {
	switch op {
	case cast.Mul, cast.Div, cast.Rem:
		return 10
	case cast.Add, cast.Sub:
		return 9
	case cast.Shl, cast.Shr:
		return 8
	case cast.Lt, cast.Le, cast.Gt, cast.Ge:
		return 7
	case cast.Eq, cast.Ne:
		return 6
	case cast.BitAnd:
		return 5
	case cast.BitXor:
		return 4
	case cast.BitOr:
		return 3
	case cast.LogAnd:
		return 2
	case cast.LogOr:
		return 1
	}
	return 0
}

// binary parses binary operators with precedence climbing.
func (p *parser) binary(minLevel int) (cast.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binOps[p.peek().Kind]
		if !ok || binLevel(op) < minLevel {
			return lhs, nil
		}
		tok := p.next()
		rhs, err := p.binary(binLevel(op) + 1)
		if err != nil {
			return nil, err
		}
		b := &cast.Binary{Op: op, X: lhs, Y: rhs}
		b.P = tok.Pos
		t, err := p.binaryType(tok.Pos, op, lhs, rhs)
		if err != nil {
			return nil, err
		}
		b.SetType(t)
		lhs = b
	}
}

func (p *parser) binaryType(pos clex.Pos, op cast.BinaryOp, x, y cast.Expr) (ctypes.Type, error) {
	tx := ctypes.Decay(x.Type())
	ty := ctypes.Decay(y.Type())
	if op.IsComparison() || op.IsLogical() {
		return ctypes.Int, nil
	}
	switch op {
	case cast.Add:
		if ctypes.IsPointer(tx) && ctypes.IsInteger(ty) {
			return tx, nil
		}
		if ctypes.IsInteger(tx) && ctypes.IsPointer(ty) {
			return ty, nil
		}
	case cast.Sub:
		if ctypes.IsPointer(tx) && ctypes.IsPointer(ty) {
			return ctypes.Int, nil
		}
		if ctypes.IsPointer(tx) && ctypes.IsInteger(ty) {
			return tx, nil
		}
	}
	if ctypes.IsPointer(tx) || ctypes.IsPointer(ty) {
		if op == cast.Add || op == cast.Sub {
			return nil, p.errf(pos, "invalid pointer arithmetic operands")
		}
	}
	return ctypes.Int, nil
}

func (p *parser) unary() (cast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case clex.Star, clex.Amp, clex.Minus, clex.Not, clex.Tilde:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		var op cast.UnaryOp
		var typ ctypes.Type
		switch t.Kind {
		case clex.Star:
			op = cast.Deref
			elem := ctypes.Elem(ctypes.Decay(x.Type()))
			if elem == nil {
				return nil, p.errf(t.Pos, "cannot dereference %s", x.Type())
			}
			typ = elem
		case clex.Amp:
			op = cast.Addr
			typ = ctypes.PointerTo(x.Type())
			if !isLValue(x) {
				return nil, p.errf(t.Pos, "cannot take address of non-lvalue")
			}
		case clex.Minus:
			op = cast.Neg
			typ = ctypes.Int
		case clex.Not:
			op = cast.LogNot
			typ = ctypes.Int
		case clex.Tilde:
			op = cast.BitNot
			typ = ctypes.Int
		}
		u := &cast.Unary{Op: op, X: x}
		u.P = t.Pos
		u.SetType(typ)
		return u, nil
	case clex.Inc, clex.Dec:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		e := &cast.IncDec{X: x, Decr: t.Kind == clex.Dec, Prefix: true}
		e.P = t.Pos
		e.SetType(ctypes.Decay(x.Type()))
		return e, nil
	case clex.KwSizeof:
		p.next()
		if p.peek().Kind == clex.LParen && p.isTypeStart(p.peekN(1)) {
			p.next()
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			typ, _, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(clex.RParen); err != nil {
				return nil, err
			}
			e := &cast.SizeofType{Of: typ}
			e.P = t.Pos
			e.SetType(ctypes.Int)
			return e, nil
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		lit := &cast.IntLit{Value: int64(p.sizeOf(x.Type()))}
		lit.P = t.Pos
		lit.SetType(ctypes.Int)
		return lit, nil
	case clex.LParen:
		// Cast?
		if p.isTypeStart(p.peekN(1)) {
			p.next()
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			typ, _, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(clex.RParen); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			e := &cast.Cast{To: typ, X: x}
			e.P = t.Pos
			e.SetType(typ)
			return e, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (cast.Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case clex.LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(clex.RBracket); err != nil {
				return nil, err
			}
			elem := ctypes.Elem(ctypes.Decay(e.Type()))
			if elem == nil {
				return nil, p.errf(t.Pos, "cannot index %s", e.Type())
			}
			ix := &cast.Index{X: e, I: idx}
			ix.P = t.Pos
			ix.SetType(elem)
			e = ix
		case clex.LParen:
			call, err := p.callRest(e, t.Pos)
			if err != nil {
				return nil, err
			}
			e = call
		case clex.Dot, clex.Arrow:
			p.next()
			name, err := p.expect(clex.Ident)
			if err != nil {
				return nil, err
			}
			base := e.Type()
			if t.Kind == clex.Arrow {
				base = ctypes.Elem(ctypes.Decay(base))
				if base == nil {
					return nil, p.errf(t.Pos, "-> on non-pointer %s", e.Type())
				}
			}
			st, ok := base.(*ctypes.Struct)
			if !ok {
				return nil, p.errf(t.Pos, "member access on non-struct %s", base)
			}
			fld := st.Field(name.Text)
			if fld == nil {
				return nil, p.errf(name.Pos, "%s has no field %q", st, name.Text)
			}
			m := &cast.Member{X: e, Name: name.Text, Arrow: t.Kind == clex.Arrow}
			m.P = t.Pos
			m.SetType(fld.Type)
			e = m
		case clex.Inc, clex.Dec:
			p.next()
			id := &cast.IncDec{X: e, Decr: t.Kind == clex.Dec, Prefix: false}
			id.P = t.Pos
			id.SetType(ctypes.Decay(e.Type()))
			e = id
		default:
			return e, nil
		}
	}
}

// callRest parses the argument list of a call whose callee is fun.
func (p *parser) callRest(fun cast.Expr, pos clex.Pos) (cast.Expr, error) {
	p.next() // (
	var args []cast.Expr
	for p.peek().Kind != clex.RParen {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(clex.Comma) {
			break
		}
	}
	if _, err := p.expect(clex.RParen); err != nil {
		return nil, err
	}
	c := &cast.Call{Fun: fun, Args: args}
	c.P = pos

	// Attribute pseudo-calls in contract context.
	if id, ok := fun.(*cast.Ident); ok && id.Type() == nil {
		if p.inContract && AttributeNames[id.Name] {
			if len(args) != 1 {
				return nil, p.errf(pos, "%s takes exactly one argument", id.Name)
			}
			switch id.Name {
			case "base", "pre":
				if id.Name == "pre" && !p.inEnsures {
					return nil, p.errf(pos, "pre(e) is only meaningful in ensures clauses")
				}
				c.SetType(ctypes.Decay(args[0].Type()))
			default:
				c.SetType(ctypes.Int)
			}
			return c, nil
		}
		return nil, p.errf(pos, "call to undeclared function %q", id.Name)
	}

	ft, ok := ctypes.Decay(fun.Type()).(ctypes.Pointer)
	var sig *ctypes.Func
	if ok {
		sig, _ = ft.Elem.(*ctypes.Func)
	}
	if sig == nil {
		sig, _ = fun.Type().(*ctypes.Func)
	}
	if sig == nil {
		return nil, p.errf(pos, "call of non-function %s", fun.Type())
	}
	if !sig.Variadic && len(args) != len(sig.Params) {
		return nil, p.errf(pos, "wrong number of arguments: got %d, want %d", len(args), len(sig.Params))
	}
	if sig.Variadic && len(args) < len(sig.Params) {
		return nil, p.errf(pos, "too few arguments: got %d, want at least %d", len(args), len(sig.Params))
	}
	c.SetType(sig.Ret)
	return c, nil
}

func (p *parser) primary() (cast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case clex.IntLit:
		p.next()
		e := &cast.IntLit{Value: t.Val}
		e.P = t.Pos
		e.SetType(ctypes.Int)
		return e, nil
	case clex.CharLit:
		p.next()
		e := &cast.IntLit{Value: t.Val, IsChar: true}
		e.P = t.Pos
		e.SetType(ctypes.Int)
		return e, nil
	case clex.StringLit:
		p.next()
		e := &cast.StringLit{Value: t.Text}
		e.P = t.Pos
		e.SetType(ctypes.Array{Elem: ctypes.Char, Len: len(t.Text) + 1})
		return e, nil
	case clex.Ident:
		p.next()
		if t.Text == "offsetof" && p.peek().Kind == clex.LParen && p.isTypeStart(p.peekN(1)) {
			return p.offsetofExpr(t.Pos)
		}
		e := &cast.Ident{Name: t.Text}
		e.P = t.Pos
		if t.Text == ReturnValueName && p.inEnsures {
			e.SetType(p.contractRet)
			return e, nil
		}
		// In contract context attribute names always denote attributes,
		// even when a like-named function is declared (contracts cannot
		// contain function calls, paper §2.2; so strlen(s) in an ensures
		// clause is the length attribute, not libc's strlen).
		if p.inContract && AttributeNames[t.Text] && p.peek().Kind == clex.LParen {
			return e, nil
		}
		if typ, ok := p.scope.lookup(t.Text); ok {
			e.SetType(typ)
			return e, nil
		}
		return nil, p.errf(t.Pos, "undeclared identifier %q", t.Text)
	case clex.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(clex.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t.Pos, "unexpected token %s in expression", t)
}

// offsetofExpr parses offsetof(type, member-designator) after the "offsetof"
// identifier and folds it to an integer literal under the run's layout
// engine. The designator may chain members and constant array indices:
// offsetof(struct s, a.b[2].c).
func (p *parser) offsetofExpr(pos clex.Pos) (cast.Expr, error) {
	if _, err := p.expect(clex.LParen); err != nil {
		return nil, err
	}
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	typ, _, err := p.declarator(base)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(clex.Comma); err != nil {
		return nil, err
	}
	off := 0
	cur := typ
	for {
		name, err := p.expect(clex.Ident)
		if err != nil {
			return nil, err
		}
		st, ok := cur.(*ctypes.Struct)
		if !ok {
			return nil, p.errf(name.Pos, "offsetof: %s is not a struct or union", cur)
		}
		fl, found := p.layout.FieldOffset(st, name.Text)
		if !found {
			return nil, p.errf(name.Pos, "offsetof: %s has no member %q", st, name.Text)
		}
		if fl.Bits > 0 {
			return nil, p.errf(name.Pos, "offsetof: cannot take the offset of bitfield %q", name.Text)
		}
		off += fl.Offset
		cur = fl.Type
		for p.accept(clex.LBracket) {
			idxTok := p.peek()
			idx, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(clex.RBracket); err != nil {
				return nil, err
			}
			a, isArr := cur.(ctypes.Array)
			if !isArr {
				return nil, p.errf(idxTok.Pos, "offsetof: cannot index non-array %s", cur)
			}
			if idx < 0 || int(idx) >= a.Len {
				return nil, p.errf(idxTok.Pos, "offsetof: index %d out of bounds for %s", idx, a)
			}
			off += int(idx) * p.sizeOf(a.Elem)
			cur = a.Elem
		}
		if !p.accept(clex.Dot) {
			break
		}
	}
	if _, err := p.expect(clex.RParen); err != nil {
		return nil, err
	}
	lit := &cast.IntLit{Value: int64(off)}
	lit.P = pos
	lit.SetType(ctypes.Int)
	return lit, nil
}
