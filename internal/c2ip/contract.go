package c2ip

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/ppt"
)

// verify translates an __assert / __assume statement whose condition is a
// contract expression (Table 4, bottom: attribute-to-constraint-variable
// mapping). Pointer expressions may resolve to several (cell, region)
// candidates; asserts are emitted once per combination (must hold for all
// possible pointer values, §3.4.2.3) while assumes take the disjunction.
func (x *xform) verify(v *cast.Verify) error {
	isAssert := v.Kind == cast.Assert
	envs := x.enumerateEnvs(v.Cond)
	if envs == nil {
		// Too many candidate combinations: conservative fallback.
		if isAssert {
			x.emit(&ip.Assert{C: ip.False(), Msg: v.Reason + " (too many pointer candidates)",
				Pos: v.Where(), Unverifiable: true})
		}
		return nil
	}

	var perEnv []ip.DNF
	exactAll := true
	for _, env := range envs {
		d, exact := x.contractDNF(v.Cond, env, !isAssert)
		if !exact {
			exactAll = false
		}
		perEnv = append(perEnv, d)
	}

	if isAssert {
		if !exactAll {
			x.emit(&ip.Assert{C: ip.False(),
				Msg: v.Reason + " (condition not expressible in linear arithmetic)",
				Pos: v.Where(), Unverifiable: true})
			return nil
		}
		for _, d := range perEnv {
			x.emit(&ip.Assert{C: d, Msg: v.Reason, Pos: v.Where()})
		}
		return nil
	}
	// Assume: the actual pointer targets are one of the candidates.
	all := ip.False()
	for _, d := range perEnv {
		all = all.Or(d)
	}
	x.assume(all)
	return nil
}

// env maps pointer-path keys to a chosen (cell, region) candidate.
type env map[string]cellRegion

type cellRegion struct {
	cell   ppt.LocID
	region ppt.LocID // -1 when the cell has no known target
	ok     bool
	// arrayBase marks a path that IS a region (an array identifier): the
	// pointer value is the region base, offset identically zero.
	arrayBase bool
}

// maxEnvs caps candidate-combination blowup.
const maxEnvs = 32

// enumerateEnvs returns all candidate environments for the pointer paths in
// e, or nil when there are too many.
func (x *xform) enumerateEnvs(e cast.Expr) []env {
	paths := map[string][]cellRegion{}
	x.collectPaths(e, paths)
	envs := []env{{}}
	for key, cands := range paths {
		if len(cands) == 0 {
			cands = []cellRegion{{ok: false}}
		}
		var next []env
		for _, base := range envs {
			for _, c := range cands {
				ne := env{}
				for k, v := range base {
					ne[k] = v
				}
				ne[key] = c
				next = append(next, ne)
			}
		}
		envs = next
		if len(envs) > maxEnvs {
			return nil
		}
	}
	return envs
}

// pathKey canonically names a pointer-valued contract expression.
func pathKey(e cast.Expr) string { return cast.ExprString(e) }

// collectPaths finds every pointer-valued subexpression that needs a
// (cell, region) resolution and records its candidates.
func (x *xform) collectPaths(e cast.Expr, out map[string][]cellRegion) {
	switch e := e.(type) {
	case *cast.Ident:
		if e.Type() != nil && ctypes.IsPointer(ctypes.Decay(e.Type())) {
			x.addPath(e, out)
		}
		if e.Type() != nil && ctypes.IsArray(e.Type()) {
			x.addPath(e, out)
		}
	case *cast.Unary:
		if e.Op == cast.Deref {
			x.addPath(e, out)
		}
		x.collectPaths(e.X, out)
	case *cast.Binary:
		x.collectPaths(e.X, out)
		x.collectPaths(e.Y, out)
	case *cast.Call:
		for _, a := range e.Args {
			x.collectPaths(a, out)
		}
	case *cast.Cast:
		x.collectPaths(e.X, out)
	}
}

func (x *xform) addPath(e cast.Expr, out map[string][]cellRegion) {
	key := pathKey(e)
	if _, done := out[key]; done {
		return
	}
	// Array identifiers decay to their base address: the region is the
	// array itself and the offset is zero.
	if id, ok := e.(*cast.Ident); ok && id.Type() != nil && ctypes.IsArray(id.Type()) {
		if l, ok := x.pt.Lv(id.Name); ok {
			out[key] = []cellRegion{{region: l, ok: true, arrayBase: true}}
			return
		}
	}
	var cands []cellRegion
	for _, c := range x.cellsOfPath(e) {
		targets := x.pt.Pt(c)
		if len(targets) == 0 {
			cands = append(cands, cellRegion{cell: c, region: -1, ok: true})
			continue
		}
		for _, r := range targets {
			cands = append(cands, cellRegion{cell: c, region: r, ok: true})
		}
	}
	out[key] = cands
}

// cellsOfPath returns the cells whose contents a pointer path denotes.
func (x *xform) cellsOfPath(e cast.Expr) []ppt.LocID {
	switch e := e.(type) {
	case *cast.Ident:
		if l, ok := x.pt.Lv(e.Name); ok {
			return []ppt.LocID{l}
		}
	case *cast.Unary:
		if e.Op == cast.Deref {
			var out []ppt.LocID
			for _, c := range x.cellsOfPath(e.X) {
				out = append(out, x.pt.Pt(c)...)
			}
			return out
		}
	case *cast.Cast:
		return x.cellsOfPath(e.X)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Boolean structure

// contractDNF translates a contract expression to DNF under env. exact
// reports whether the translation is complete; when false in assume mode
// the returned DNF is a sound weakening (true at the failed node).
func (x *xform) contractDNF(e cast.Expr, ev env, weakenOK bool) (ip.DNF, bool) {
	switch b := e.(type) {
	case *cast.Binary:
		switch {
		case b.Op == cast.LogAnd:
			l, e1 := x.contractDNF(b.X, ev, weakenOK)
			r, e2 := x.contractDNF(b.Y, ev, weakenOK)
			if e1 && e2 {
				return l.And(r), true
			}
			if weakenOK {
				return l.And(r), false // failed side already weakened to true
			}
			return ip.True(), false
		case b.Op == cast.LogOr:
			l, e1 := x.contractDNF(b.X, ev, false)
			r, e2 := x.contractDNF(b.Y, ev, false)
			if e1 && e2 {
				return l.Or(r), true
			}
			if weakenOK {
				return ip.True(), false
			}
			return ip.True(), false
		case b.Op.IsComparison():
			d, ok := x.compareDNF(b.Op, b.X, b.Y, ev)
			if ok {
				return d, true
			}
			if weakenOK {
				return ip.True(), false
			}
			return ip.True(), false
		}
	case *cast.Unary:
		if b.Op == cast.LogNot {
			inner, exact := x.contractDNF(b.X, ev, false)
			if exact {
				return inner.Negate(), true
			}
			return ip.True(), false
		}
	case *cast.Call:
		switch b.FuncName() {
		case "is_nullt":
			// Table 1: "is exp pointing to a null-terminated string?" — a
			// property of the pointer: the region has a terminator and it
			// lies at or after exp's position.
			if cr, ok := x.resolvePath(b.Args[0], ev); ok && cr.region >= 0 {
				off := linear.ConstExpr(0)
				if !cr.arrayBase {
					off = linear.VarExpr(x.offV(cr.cell, cr.region))
				}
				ln := linear.VarExpr(x.lenV(cr.region))
				return ip.Conj(
					eqConst(x.ntV(cr.region), 1),
					linear.NewGe(ln.Sub(off)),
				), true
			}
			return ip.True(), false
		case "is_within_bounds":
			if cr, ok := x.resolvePath(b.Args[0], ev); ok && cr.region >= 0 {
				if cr.arrayBase {
					return ip.True(), true
				}
				off := linear.VarExpr(x.offV(cr.cell, cr.region))
				size := linear.VarExpr(x.sizeV(cr.region))
				return ip.Conj(
					linear.NewGe(off.Clone()),
					linear.NewGe(size.Sub(off)),
				), true
			}
			return ip.True(), false
		}
	case *cast.IntLit:
		if b.Value != 0 {
			return ip.True(), true
		}
		return ip.False(), true
	}
	// Fallback: a bare term compared against zero.
	if t, ok := x.termExpr(e, ev); ok {
		return relDNF(cast.Ne, t, linear.ConstExpr(0)), true
	}
	return ip.True(), false
}

// resolvePath finds the env candidate for a pointer path.
func (x *xform) resolvePath(e cast.Expr, ev env) (cellRegion, bool) {
	cr, ok := ev[pathKey(e)]
	if !ok || !cr.ok {
		return cellRegion{}, false
	}
	return cr, true
}

// compareDNF handles comparisons, dispatching between pointer comparisons
// (offset channel / address channel) and integer terms.
func (x *xform) compareDNF(op cast.BinaryOp, a, b cast.Expr, ev env) (ip.DNF, bool) {
	aPtr := isPointerExpr(a)
	bPtr := isPointerExpr(b)
	switch {
	case aPtr && bPtr:
		ae, ok1 := x.pointerOffsetTerm(a, ev)
		be, ok2 := x.pointerOffsetTerm(b, ev)
		if !ok1 || !ok2 {
			return nil, false
		}
		return relDNF(op, ae, be), true
	case aPtr && isZeroLit(b):
		if cr, ok := x.resolvePath(a, ev); ok {
			return relDNF(op, linear.VarExpr(x.valV(cr.cell)), linear.ConstExpr(0)), true
		}
		return nil, false
	case bPtr && isZeroLit(a):
		if cr, ok := x.resolvePath(b, ev); ok {
			return relDNF(op, linear.ConstExpr(0), linear.VarExpr(x.valV(cr.cell))), true
		}
		return nil, false
	default:
		ae, ok1 := x.termExpr(a, ev)
		be, ok2 := x.termExpr(b, ev)
		if !ok1 || !ok2 {
			return nil, false
		}
		return relDNF(op, ae, be), true
	}
}

func isPointerExpr(e cast.Expr) bool {
	t := e.Type()
	if t == nil {
		// Untyped contract subtree (e.g. pre() call): inspect shape.
		if c, ok := e.(*cast.Call); ok && c.FuncName() == "pre" {
			return isPointerExpr(c.Args[0])
		}
		return false
	}
	dt := ctypes.Decay(t)
	return ctypes.IsPointer(dt)
}

func isZeroLit(e cast.Expr) bool {
	l, ok := e.(*cast.IntLit)
	return ok && l.Value == 0
}

// pointerOffsetTerm returns the offset-channel linear term of a
// pointer-valued contract expression: the offset variable of its resolved
// cell, or for p + i the offset plus the scaled integer term.
func (x *xform) pointerOffsetTerm(e cast.Expr, ev env) (linear.Expr, bool) {
	switch b := e.(type) {
	case *cast.Call:
		// base(e) denotes the base address of e's buffer: offset zero.
		if b.FuncName() == "base" && len(b.Args) == 1 {
			return linear.ConstExpr(0), true
		}
	case *cast.Binary:
		if b.Op == cast.Add || b.Op == cast.Sub {
			pe, ok1 := x.pointerOffsetTerm(b.X, ev)
			ie, ok2 := x.termExpr(b.Y, ev)
			if !ok1 || !ok2 {
				return linear.Expr{}, false
			}
			sz := x.elemSize(b.X.Type())
			if b.Op == cast.Sub {
				return pe.Sub(ie.Scale(sz)), true
			}
			return pe.Add(ie.Scale(sz)), true
		}
	}
	if cr, ok := x.resolvePath(e, ev); ok {
		if cr.arrayBase {
			return linear.ConstExpr(0), true
		}
		return linear.VarExpr(x.offV(cr.cell, cr.region)), true
	}
	return linear.Expr{}, false
}

// termExpr translates an integer-valued contract term to a linear
// expression under env.
func (x *xform) termExpr(e cast.Expr, ev env) (linear.Expr, bool) {
	switch t := e.(type) {
	case *cast.IntLit:
		return linear.ConstExpr(t.Value), true
	case *cast.SizeofType:
		return linear.ConstExpr(int64(x.engine().SizeOf(t.Of))), true
	case *cast.Ident:
		if l, ok := x.pt.Lv(t.Name); ok {
			return linear.VarExpr(x.valV(l)), true
		}
		return linear.Expr{}, false
	case *cast.Unary:
		switch t.Op {
		case cast.Neg:
			inner, ok := x.termExpr(t.X, ev)
			if !ok {
				return linear.Expr{}, false
			}
			return inner.Scale(-1), true
		case cast.Deref:
			// *p as an integer term: the value channel of the region.
			if cr, ok := x.resolvePath(t, ev); ok {
				return linear.VarExpr(x.valV(cr.cell)), true
			}
			return linear.Expr{}, false
		}
	case *cast.Binary:
		switch t.Op {
		case cast.Add, cast.Sub:
			a, ok1 := x.termExpr(t.X, ev)
			b, ok2 := x.termExpr(t.Y, ev)
			if !ok1 || !ok2 {
				return linear.Expr{}, false
			}
			if t.Op == cast.Sub {
				return a.Sub(b), true
			}
			return a.Add(b), true
		case cast.Mul:
			if lit, ok := t.X.(*cast.IntLit); ok {
				b, ok2 := x.termExpr(t.Y, ev)
				if !ok2 {
					return linear.Expr{}, false
				}
				return b.Scale(lit.Value), true
			}
			if lit, ok := t.Y.(*cast.IntLit); ok {
				a, ok2 := x.termExpr(t.X, ev)
				if !ok2 {
					return linear.Expr{}, false
				}
				return a.Scale(lit.Value), true
			}
		}
	case *cast.Call:
		switch t.FuncName() {
		case "strlen":
			if cr, ok := x.resolvePath(t.Args[0], ev); ok && cr.region >= 0 {
				ln := linear.VarExpr(x.lenV(cr.region))
				if cr.arrayBase {
					return ln, true
				}
				off := linear.VarExpr(x.offV(cr.cell, cr.region))
				return ln.Sub(off), true
			}
		case "alloc":
			if cr, ok := x.resolvePath(t.Args[0], ev); ok && cr.region >= 0 {
				size := linear.VarExpr(x.sizeV(cr.region))
				if cr.arrayBase {
					return size, true
				}
				off := linear.VarExpr(x.offV(cr.cell, cr.region))
				return size.Sub(off), true
			}
		case "offset":
			if cr, ok := x.resolvePath(t.Args[0], ev); ok {
				if cr.arrayBase {
					return linear.ConstExpr(0), true
				}
				return linear.VarExpr(x.offV(cr.cell, cr.region)), true
			}
		case "is_nullt":
			if cr, ok := x.resolvePath(t.Args[0], ev); ok && cr.region >= 0 {
				return linear.VarExpr(x.ntV(cr.region)), true
			}
		}
	case *cast.Cast:
		return x.termExpr(t.X, ev)
	}
	return linear.Expr{}, false
}

var _ = fmt.Sprintf
