package c2ip

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/pointer"
	"repro/internal/ppt"
)

// TestC2IPStoreForms drives the pure-simple-RHS store translations (the
// Fig. 3 idiom "*PtrEndText = PtrEndLoc + 1" and friends).
func TestC2IPStoreForms(t *testing.T) {
	src := `
void f(char **pp, char *q, int i)
    requires (is_within_bounds(*pp))
    modifies (*pp)
{
    *pp = q + 1;
    *pp = q - i;
    *pp = q;
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, ".offset := lv(q).offset + 1") {
		t.Errorf("store of q+1 lost the offset transfer:\n%s", ipText)
	}
	if !strings.Contains(ipText, ".offset := lv(q).offset - lv(i).val") {
		t.Errorf("store of q-i lost the offset transfer:\n%s", ipText)
	}
}

// TestC2IPIntArithForms covers the arithmetic value-channel transfers.
func TestC2IPIntArithForms(t *testing.T) {
	src := `
void f(int a, int b) {
    int x;
    x = a + b;
    x = a - b;
    x = a * 3;
    x = 4 * b;
    x = a * b;
    x = a / 2;
    x = a % 10;
    x = a << 2;
    x = a & b;
    x = -a;
    x = !a;
    x = ~a;
}
`
	ipText := transform(t, src, "f", Options{})
	for _, want := range []string{
		"lv(x).val := lv(a).val + lv(b).val",
		"lv(x).val := lv(a).val - lv(b).val",
		"lv(x).val := 3*lv(a).val",
		"lv(x).val := 4*lv(b).val",
		"lv(x).val := 4*lv(a).val", // a << 2
		"lv(x).val := -lv(a).val",
	} {
		if !strings.Contains(ipText, want) {
			t.Errorf("missing %q:\n%s", want, ipText)
		}
	}
	// a % 10 is bounded.
	if !strings.Contains(ipText, "lv(x).val >= -9") || !strings.Contains(ipText, "-lv(x).val >= -9") {
		t.Errorf("remainder bounds missing:\n%s", ipText)
	}
	// Nonlinear a*b and bitand havoc.
	if strings.Count(ipText, "lv(x).val := unknown") < 3 {
		t.Errorf("nonlinear ops should havoc:\n%s", ipText)
	}
}

// TestC2IPPointerDiff covers x = p - q.
func TestC2IPPointerDiff(t *testing.T) {
	src := `
void f(char *p, char *q) {
    int d;
    d = p - q;
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "assume(-lv(p).offset + lv(q).offset + lv(d).val = 0)") {
		t.Errorf("pointer difference relation missing:\n%s", ipText)
	}
}

// TestC2IPComparisonIntoVar covers x = (a < b).
func TestC2IPComparisonIntoVar(t *testing.T) {
	src := `
void f(int a, int b) {
    int c;
    c = a < b;
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "lv(c).val := 1") || !strings.Contains(ipText, "lv(c).val := 0") {
		t.Errorf("comparison result not materialized:\n%s", ipText)
	}
}

// TestC2IPNullChecks covers pointer-vs-zero conditions through the address
// channel.
func TestC2IPNullChecks(t *testing.T) {
	src := `
char *strchr(char *s, int c)
    requires (is_nullt(s))
    ensures (return_value == 0 || is_within_bounds(return_value));
void f(char *s)
    requires (is_nullt(s))
{
    char *hit;
    int found;
    found = 0;
    hit = strchr(s, 'x');
    if (hit != 0) {
        found = 1;
    }
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "lv(hit).val") {
		t.Errorf("null check should use the address-value channel:\n%s", ipText)
	}
}

// TestC2IPCharStoreVariable covers storing a variable character (the
// three-way zero/overwrite/benign split).
func TestC2IPCharStoreVariable(t *testing.T) {
	src := `
void f(char *p, int c)
    requires (is_within_bounds(p) && alloc(p) >= 1)
    modifies (p)
{
    *p = c;
}
`
	ipText := transform(t, src, "f", Options{})
	// The value can be zero (terminator) or nonzero (overwrite/benign).
	if !strings.Contains(ipText, "assume(lv(c).val = 0)") {
		t.Errorf("zero branch missing:\n%s", ipText)
	}
	if !strings.Contains(ipText, ".len := lv(p).offset") {
		t.Errorf("terminator update missing:\n%s", ipText)
	}
	if strings.Count(ipText, "if (unknown) goto") < 2 {
		t.Errorf("three-way split missing:\n%s", ipText)
	}
}

// TestC2IPFunctionPointerContracts: a call through a function pointer
// selects nondeterministically among the candidate callees and applies each
// one's contract (§3.4.2.3).
func TestC2IPFunctionPointerContracts(t *testing.T) {
	src := `
void safe(char *p)
    requires (alloc(p) >= 1)
    modifies (p)
    ensures (is_nullt(p));
void picky(char *p)
    requires (alloc(p) >= 64)
    modifies (p)
    ensures (is_nullt(p));
void f(char *buf, int sel)
    requires (is_within_bounds(buf) && alloc(buf) >= 8)
{
    void (*op)(char *);
    if (sel) {
        op = &safe;
    } else {
        op = &picky;
    }
    op(buf);
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "precondition of safe (via function pointer op)") {
		t.Errorf("safe's precondition not asserted:\n%s", ipText)
	}
	if !strings.Contains(ipText, "precondition of picky (via function pointer op)") {
		t.Errorf("picky's precondition not asserted:\n%s", ipText)
	}
	if !strings.Contains(ipText, "if (unknown) goto") {
		t.Errorf("no nondeterministic callee selection:\n%s", ipText)
	}
}

// TestC2IPComplexityShape asserts the §3.4.2.4 claim structurally: doubling
// the number of cross-aliased pointers roughly doubles this translation's
// variable count (O(S*V)) but roughly quadruples the [13]-style
// translation's (O(S*V^2)).
func TestC2IPComplexityShape(t *testing.T) {
	gen := func(V int) string {
		var sb strings.Builder
		sb.WriteString("void scale(int c) {\n")
		for i := 0; i < V; i++ {
			fmt.Fprintf(&sb, "    char b%d[64];\n    char *p%d;\n", i, i)
		}
		for i := 0; i < V; i++ {
			fmt.Fprintf(&sb, "    p0 = b%d;\n", i)
		}
		for i := 1; i < V; i++ {
			fmt.Fprintf(&sb, "    p%d = p0;\n", i)
		}
		for s := 0; s < 24; s++ {
			fmt.Fprintf(&sb, "    if (c > %d) { p%d = p%d + 1; }\n", s, s%V, s%V)
		}
		sb.WriteString("}\n")
		return sb.String()
	}
	vars := func(src string, naive bool) int {
		f, err := cparse.ParseFile("t.c", src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := corec.Normalize(f)
		if err != nil {
			t.Fatal(err)
		}
		fd := prog.File.Lookup("scale")
		g := pointer.Analyze(prog, pointer.Inclusion)
		pt := ppt.Build(prog, fd, g, ppt.Options{})
		res, err := Transform(prog, fd, pt, Options{Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		return res.Prog.NumVars()
	}
	small, big := gen(8), gen(16)
	newGrowth := float64(vars(big, false)) / float64(vars(small, false))
	naiveGrowth := float64(vars(big, true)) / float64(vars(small, true))
	if newGrowth > 2.5 {
		t.Errorf("new translation grows superlinearly: x%.2f per doubling", newGrowth)
	}
	if naiveGrowth < 2.5 {
		t.Errorf("naive translation should grow quadratically: x%.2f per doubling", naiveGrowth)
	}
	t.Logf("variable growth per doubling: new x%.2f, naive x%.2f", newGrowth, naiveGrowth)
}
