package c2ip

import (
	"repro/internal/cast"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/ppt"
)

// aval is the abstract value of a CoreC atom: either a literal or the
// contents of a variable's cell.
type aval struct {
	lit     int64
	isLit   bool
	cell    ppt.LocID
	hasCell bool
	name    string
	typ     ctypes.Type
}

// atom classifies a CoreC atom expression.
func (x *xform) atom(e cast.Expr) aval {
	switch e := e.(type) {
	case *cast.IntLit:
		return aval{lit: e.Value, isLit: true, typ: e.Type()}
	case *cast.Ident:
		v := aval{name: e.Name, typ: e.Type()}
		if l, ok := x.pt.Lv(e.Name); ok {
			v.cell = l
			v.hasCell = true
		}
		return v
	}
	return aval{typ: e.Type()}
}

// isRegionValued reports whether the atom denotes a region whose address is
// the value (arrays and functions).
func (v aval) isRegionValued() bool {
	return v.typ != nil && (ctypes.IsArray(v.typ) || ctypes.IsFunc(v.typ))
}

// isPointerish reports whether the atom's (decayed) type is a pointer.
func (v aval) isPointerish() bool {
	return v.typ != nil && ctypes.IsPointer(ctypes.Decay(v.typ))
}

// valExpr returns the linear expression for the atom's primitive value, or
// ok=false when it is unknown.
func (x *xform) valExpr(v aval) (linear.Expr, bool) {
	if v.isLit {
		return linear.ConstExpr(v.lit), true
	}
	if v.hasCell && !v.isRegionValued() {
		return linear.VarExpr(x.valV(v.cell)), true
	}
	return linear.Expr{}, false
}

// offsetExpr returns the linear expression for the pointer offset carried
// by the atom (relative to region, for naive mode), or ok=false.
// Array-valued atoms have offset 0.
func (x *xform) offsetExpr(v aval, region ppt.LocID) (linear.Expr, bool) {
	if v.isRegionValued() {
		return linear.ConstExpr(0), true
	}
	if v.hasCell {
		return linear.VarExpr(x.offV(v.cell, region)), true
	}
	if v.isLit {
		// An integer literal used as a pointer (p = 0): no usable offset.
		return linear.Expr{}, false
	}
	return linear.Expr{}, false
}

// regionsOf returns the regions the atom's pointer value may reference:
// the points-to set of its cell, or the region itself for arrays.
func (x *xform) regionsOf(v aval) []ppt.LocID {
	if !v.hasCell {
		return nil
	}
	if v.isRegionValued() {
		return []ppt.LocID{v.cell}
	}
	return x.pt.Pt(v.cell)
}

// elemSize returns the byte size of the pointee of the atom's (decayed)
// pointer type under the run's layout target, defaulting to 1.
func (x *xform) elemSize(t ctypes.Type) int64 {
	e := ctypes.Elem(ctypes.Decay(t))
	if e == nil {
		return 1
	}
	if s := x.engine().SizeOf(e); s > 0 {
		return int64(s)
	}
	return 1
}

// havocCell havocs the stored-value properties (val + offsets) of a cell.
func (x *xform) havocCell(l ppt.LocID) {
	x.havoc(x.valV(l))
	for _, ov := range x.offVars(l) {
		x.havoc(ov)
	}
}

// havocRegionString havocs the string properties of a region.
func (x *xform) havocRegionString(r ppt.LocID) {
	if x.stringRegion(r) {
		x.havocNTLen(r)
	}
	x.havoc(x.valV(r))
}

// setOffset assigns all offset variables of cell l. In naive mode the same
// expression is written to every (cell, region) pair variable; exprFor may
// specialize per region.
func (x *xform) setOffset(l ppt.LocID, exprFor func(region ppt.LocID) (linear.Expr, bool)) {
	if !x.opts.Naive {
		if e, ok := exprFor(-1); ok {
			x.assign(x.offV(l, -1), e)
		} else {
			x.havoc(x.offV(l, -1))
		}
		return
	}
	targets := x.pt.Pt(l)
	if len(targets) == 0 {
		if e, ok := exprFor(-1); ok {
			x.assign(x.offV(l, -1), e)
		} else {
			x.havoc(x.offV(l, -1))
		}
		return
	}
	for _, r := range targets {
		if e, ok := exprFor(r); ok {
			x.assign(x.offV(l, r), e)
		} else {
			x.havoc(x.offV(l, r))
		}
	}
}

// ---------------------------------------------------------------------------
// Relations

// relDNF builds the DNF for "a op b" over linear expressions (integer
// semantics; strict inequalities shift by one).
func relDNF(op cast.BinaryOp, a, b linear.Expr) ip.DNF {
	switch op {
	case cast.Lt:
		return ip.Single(linear.NewGt(b.Sub(a)))
	case cast.Le:
		return ip.Single(linear.NewGe(b.Sub(a)))
	case cast.Gt:
		return ip.Single(linear.NewGt(a.Sub(b)))
	case cast.Ge:
		return ip.Single(linear.NewGe(a.Sub(b)))
	case cast.Eq:
		return ip.Single(linear.NewEq(a.Sub(b)))
	case cast.Ne:
		lt := linear.NewGt(b.Sub(a))
		gt := linear.NewGt(a.Sub(b))
		return ip.Single(lt).Or(ip.Single(gt))
	}
	return ip.True()
}

// derefCheck returns the Table 3 safety condition for dereferencing a
// pointer whose offset (within region r) is off. Character reads get the
// full cleanness check (accesses stay at or before the null terminator when
// one exists):
//
//	0 <= off && ((is_nullt(r) && off <= len(r)) ||
//	             (!is_nullt(r) && off <= aSize(r) - 1))
//
// Writes and word-sized accesses get the pure bounds check
// 0 <= off <= aSize(r) - elem: writing beyond the terminator (appending) is
// legitimate string building, and the terminator bookkeeping does not apply
// to non-character cells. elem is the byte width of the access.
func (x *xform) derefCheck(off linear.Expr, r ppt.LocID, elem int64, isRead bool) ip.DNF {
	nonneg := linear.NewGe(off)
	size := linear.VarExpr(x.sizeV(r))
	inBounds := linear.NewGe(size.Sub(off).Sub(linear.ConstExpr(elem)))
	if x.opts.NoCleanness || !isRead || elem != 1 || !x.stringRegion(r) {
		return ip.Conj(nonneg, inBounds)
	}
	nt := linear.VarExpr(x.ntV(r))
	ntTrue := linear.NewEq(nt.Sub(linear.ConstExpr(1)))
	ntFalse := linear.NewEq(nt.Clone())
	beforeNull := linear.NewGe(linear.VarExpr(x.lenV(r)).Sub(off))
	d1 := []linear.Constraint{nonneg, ntTrue, beforeNull}
	d2 := []linear.Constraint{nonneg.Clone(), ntFalse, inBounds}
	return ip.DNF{d1, d2}
}

// arithCheck returns the Table 3 condition for forming a pointer at offset
// off within region r: 0 <= off <= aSize(r) (one past the end is legal,
// K&R A7.7).
func (x *xform) arithCheck(off linear.Expr, r ppt.LocID) ip.DNF {
	nonneg := linear.NewGe(off)
	size := linear.VarExpr(x.sizeV(r))
	within := linear.NewGe(size.Sub(off))
	return ip.Conj(nonneg, within)
}
