package c2ip

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/pointer"
	"repro/internal/ppt"
)

// FormatFuncs are the printf-family functions that get automatically
// derived pre/postconditions per calling context (paper §3.4.2.3).
var FormatFuncs = map[string]bool{
	"printf": true, "fprintf": true, "sprintf": true, "snprintf": true,
}

// callStmt translates a procedure call (Table 4: g(a1..am) becomes
// mod[g](a1..am); the inliner already bracketed the call with the
// contract's assert/assume).
func (x *xform) callStmt(dst string, c *cast.Call, pos clex.Pos) error {
	name := c.FuncName()

	if pointer.AllocFuncs[name] {
		return x.allocCall(dst, c)
	}
	if FormatFuncs[name] {
		return x.formatCall(dst, c, pos)
	}

	callee := x.file.Lookup(name)
	switch {
	case callee != nil && callee.Contract != nil:
		sub := map[string]cast.Expr{}
		for i, p := range callee.Params {
			if i < len(c.Args) {
				sub[p.Name] = c.Args[i]
			}
		}
		for _, m := range callee.Contract.Modifies {
			x.modifiesEntry(cast.SubstituteIdents(m, sub))
		}
	case callee == nil && x.isFuncPointerVar(name):
		// A call through a function pointer (§3.4.2.3): the pointer
		// analysis determined the candidate callees; select one
		// nondeterministically and apply its contract.
		return x.funcPointerCallImpl(dst, name, c, pos)
	case name != "":
		// Unknown effects: conservatively havoc everything reachable from
		// the pointer arguments and from the globals.
		x.warnf(pos, "call to %s without contract: assuming worst-case side effects", name)
		x.havocWorstCase(c)
	}

	if dst != "" {
		if l, ok := x.pt.Lv(dst); ok {
			x.havocCell(l)
		}
	}
	return nil
}

// isFuncPointerVar reports whether name is a visible variable that may hold
// function values.
func (x *xform) isFuncPointerVar(name string) bool {
	l, ok := x.pt.Lv(name)
	if !ok {
		return false
	}
	for _, t := range x.pt.Pt(l) {
		if x.file.Lookup(x.pt.Loc(t).Name) != nil {
			return true
		}
	}
	return false
}

// funcPointerCallImpl expands a call through a function pointer into a
// nondeterministic choice over the candidate callees, applying each one's
// contract (assert the precondition, havoc the side effects, assume the
// postcondition) exactly as the inliner does for direct calls. pre()
// conjuncts in the callee postconditions are dropped (no snapshots exist
// for an indirect callee).
func (x *xform) funcPointerCallImpl(dst, name string, c *cast.Call, pos clex.Pos) error {
	l, _ := x.pt.Lv(name)
	var callees []*cast.FuncDecl
	for _, t := range x.pt.Pt(l) {
		if fd := x.file.Lookup(x.pt.Loc(t).Name); fd != nil {
			callees = append(callees, fd)
		}
	}
	if len(callees) == 0 {
		x.warnf(pos, "call through %s resolves to no function; assuming worst case", name)
		x.havocWorstCase(c)
		return nil
	}
	var alts []func()
	for _, fd := range callees {
		fd := fd
		alts = append(alts, func() {
			sub := map[string]cast.Expr{}
			for i, p := range fd.Params {
				if i < len(c.Args) {
					sub[p.Name] = c.Args[i]
				}
			}
			if fd.Contract == nil {
				x.havocWorstCase(c)
				if dst != "" {
					if dl, ok := x.pt.Lv(dst); ok {
						x.havocCell(dl)
					}
				}
			} else {
				if fd.Contract.Requires != nil {
					v := &cast.Verify{
						Kind:   cast.Assert,
						Cond:   cast.SubstituteIdents(fd.Contract.Requires, sub),
						Reason: fmt.Sprintf("precondition of %s (via function pointer %s)", fd.Name, name),
						Site:   pos,
					}
					v.P = pos
					_ = x.verify(v)
				}
				for _, m := range fd.Contract.Modifies {
					x.modifiesEntry(cast.SubstituteIdents(m, sub))
				}
				// The result cell is overwritten before the postcondition
				// (which may constrain it) is assumed.
				if dst != "" {
					if dl, ok := x.pt.Lv(dst); ok {
						x.havocCell(dl)
					}
				}
				if fd.Contract.Ensures != nil {
					post := cast.SubstituteIdents(fd.Contract.Ensures, sub)
					if dst != "" {
						id := &cast.Ident{Name: dst}
						id.SetType(c.Type())
						post = cast.SubstituteIdents(post, map[string]cast.Expr{cast.ReturnValueName: id})
					}
					post = dropPreConjuncts(post)
					if post != nil {
						v := &cast.Verify{
							Kind:   cast.Assume,
							Cond:   post,
							Reason: fmt.Sprintf("postcondition of %s (via %s)", fd.Name, name),
							Site:   pos,
						}
						v.P = pos
						_ = x.verify(v)
					}
				}
			}
		})
	}
	x.choose(alts...)
	return nil
}

// dropPreConjuncts removes top-level conjuncts containing pre() calls.
func dropPreConjuncts(e cast.Expr) cast.Expr {
	if b, ok := e.(*cast.Binary); ok && b.Op == cast.LogAnd {
		l := dropPreConjuncts(b.X)
		r := dropPreConjuncts(b.Y)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		default:
			b.X, b.Y = l, r
			return b
		}
	}
	hasPre := false
	cast.WalkExpr(e, func(x cast.Expr) bool {
		if cc, ok := x.(*cast.Call); ok && cc.FuncName() == "pre" {
			hasPre = true
			return false
		}
		return true
	})
	if hasPre {
		return nil
	}
	return e
}

// allocCall implements p = Alloc(i) (Table 4 row 2): offset zero, region
// size from the argument, no null terminator.
func (x *xform) allocCall(dst string, c *cast.Call) error {
	if dst == "" {
		return nil
	}
	l, ok := x.pt.Lv(dst)
	if !ok {
		return nil
	}
	x.setOffset(l, func(ppt.LocID) (linear.Expr, bool) {
		return linear.ConstExpr(0), true
	})
	x.havoc(x.valV(l))
	x.assume(ip.Single(geConst(x.valV(l), 1)))

	var size linear.Expr
	sizeOK := false
	if len(c.Args) > 0 {
		av := x.atom(c.Args[0])
		size, sizeOK = x.valExpr(av)
	}
	regions := x.pt.Pt(l)
	strong := x.strongFor(regions)
	for _, r := range regions {
		r := r
		weak := !strong || x.pt.Loc(r).Summary
		x.weakly(weak, func() {
			if sizeOK {
				x.assign(x.sizeV(r), size.Clone())
			} else {
				x.havoc(x.sizeV(r))
				x.assume(ip.Single(geConst(x.sizeV(r), 0)))
			}
			if x.stringRegion(r) {
				x.assign(x.ntV(r), linear.ConstExpr(0))
				x.havocLen(r)
			}
		})
	}
	return nil
}

// modifiesEntry havocs the state named by one modifies-clause entry
// (actuals already substituted). Conventions:
//
//	modifies (p)          p of type char*: the buffer p points into
//	                      (contents, terminator, length)
//	modifies (x)          x integer: the variable's value
//	modifies (*p)         the cell(s) *p (stored value and pointer offset)
//	modifies (strlen(e))  the length/terminator of e's target region
//	modifies (is_nullt(e)) likewise
//	modifies (alloc(e))   the allocation size of e's target region
func (x *xform) modifiesEntry(e cast.Expr) {
	switch m := e.(type) {
	case *cast.Call:
		switch m.FuncName() {
		case "strlen":
			for _, r := range x.regionsOfPath(m.Args[0]) {
				if x.stringRegion(r) {
					x.weakly(true, func() { x.havocLen(r) })
				}
			}
			return
		case "is_nullt":
			for _, r := range x.regionsOfPath(m.Args[0]) {
				if x.stringRegion(r) {
					x.weakly(true, func() { x.havocNTLen(r) })
				}
			}
			return
		case "alloc":
			for _, r := range x.regionsOfPath(m.Args[0]) {
				x.weakly(true, func() { x.havoc(x.sizeV(r)) })
			}
			return
		}
	case *cast.Ident:
		t := ctypes.Decay(typeOrInt(m))
		if ctypes.IsPointer(t) {
			// Buffer contents rule (array arguments decay: the array is
			// the region).
			regions := x.regionsOfPath(m)
			strong := x.strongFor(regions)
			for _, r := range regions {
				r := r
				x.weakly(!strong || x.pt.Loc(r).Summary, func() {
					x.havocRegionString(r)
				})
			}
			return
		}
		if l, ok := x.pt.Lv(m.Name); ok {
			x.weakly(x.pt.Loc(l).Summary, func() { x.havoc(x.valV(l)) })
		}
		return
	case *cast.Unary:
		if m.Op == cast.Deref {
			cells := x.cellsOfPath(m)
			strong := x.strongFor(cells)
			for _, cell := range cells {
				cell := cell
				x.weakly(!strong || x.pt.Loc(cell).Summary, func() {
					x.havocCell(cell)
				})
			}
			return
		}
	}
	// Unrecognized entry: havoc reachable state conservatively.
	for _, cell := range x.cellsOfPath(e) {
		x.havocReachable(cell)
	}
}

// regionsOfPath resolves a contract pointer path to target regions. An
// array identifier IS its region (decay).
func (x *xform) regionsOfPath(e cast.Expr) []ppt.LocID {
	if id, ok := e.(*cast.Ident); ok && id.Type() != nil && ctypes.IsArray(id.Type()) {
		if l, ok := x.pt.Lv(id.Name); ok {
			return []ppt.LocID{l}
		}
		return nil
	}
	var out []ppt.LocID
	seen := map[ppt.LocID]bool{}
	for _, c := range x.cellsOfPath(e) {
		for _, r := range x.pt.Pt(c) {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// havocReachable havocs every property of every location reachable from l.
func (x *xform) havocReachable(l ppt.LocID) {
	seen := map[ppt.LocID]bool{}
	var walk func(ppt.LocID)
	walk = func(n ppt.LocID) {
		if seen[n] {
			return
		}
		seen[n] = true
		x.weakly(true, func() {
			x.havocCell(n)
			x.havocRegionString(n)
		})
		for _, t := range x.pt.Pt(n) {
			walk(t)
		}
	}
	walk(l)
}

// havocWorstCase models a call with no contract: everything reachable from
// pointer arguments and globals may change.
func (x *xform) havocWorstCase(c *cast.Call) {
	for _, a := range c.Args {
		av := x.atom(a)
		if !av.hasCell {
			continue
		}
		if av.isPointerish() || av.isRegionValued() {
			for _, r := range x.regionsOf(av) {
				x.havocReachable(r)
			}
		}
	}
	for _, d := range x.file.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			if l, ok := x.pt.Lv(vd.Name); ok {
				x.havocReachable(l)
			}
		}
	}
}

func typeOrInt(e cast.Expr) ctypes.Type {
	if t := e.Type(); t != nil {
		return t
	}
	return ctypes.Int
}

// ---------------------------------------------------------------------------
// Format functions (paper §3.4.2.3)

// formatCall derives a contract from the format string at the call site.
func (x *xform) formatCall(dst string, c *cast.Call, pos clex.Pos) error {
	name := c.FuncName()
	fmtIdx := 0
	var bufArg cast.Expr
	switch name {
	case "sprintf":
		if len(c.Args) < 2 {
			return nil
		}
		bufArg = c.Args[0]
		fmtIdx = 1
	case "snprintf":
		if len(c.Args) < 3 {
			return nil
		}
		bufArg = c.Args[0]
		fmtIdx = 2
	case "fprintf":
		fmtIdx = 1
	case "printf":
		fmtIdx = 0
	}
	if fmtIdx >= len(c.Args) {
		return nil
	}

	format, ok := x.constantFormat(c.Args[fmtIdx])
	if !ok {
		x.warnf(pos, "%s: format parameter is not a constant", name)
		if bufArg != nil {
			bv := x.atom(bufArg)
			for _, r := range x.regionsOf(bv) {
				x.weakly(true, func() { x.havocRegionString(r) })
			}
			x.emit(&ip.Assert{C: ip.False(),
				Msg:          fmt.Sprintf("%s with non-constant format", name),
				Pos:          pos,
				Unverifiable: true})
		}
		return nil
	}

	minLen, maxLen, exact, extra, perr := x.formatLength(format, c.Args[fmtIdx+1:], pos, name)
	if perr != nil {
		return perr
	}

	// %s arguments must be null-terminated.
	for _, sArg := range extra {
		av := x.atom(sArg)
		for _, r := range x.regionsOf(av) {
			x.emit(&ip.Assert{
				C:   ip.Conj(eqConst(x.ntV(r), 1)),
				Msg: fmt.Sprintf("%%s argument of %s must be null-terminated", name),
				Pos: pos,
			})
		}
	}

	if bufArg == nil {
		return nil
	}
	// sprintf: derived precondition alloc(dst) >= maxLen + 1, derived
	// postcondition on the terminator.
	bv := x.atom(bufArg)
	regions := x.regionsOf(bv)
	strong := x.strongFor(regions)
	for _, r := range regions {
		r := r
		off, okOff := x.offsetExpr(bv, r)
		if !okOff {
			x.emit(&ip.Assert{C: ip.False(),
				Msg: fmt.Sprintf("%s destination has untracked offset", name), Pos: pos,
				Unverifiable: true})
			continue
		}
		size := linear.VarExpr(x.sizeV(r))
		need := maxLen.Add(linear.ConstExpr(1)).Add(off.Clone())
		x.emit(&ip.Assert{
			C:   ip.Conj(linear.NewGe(size.Sub(need)), linear.NewGe(off.Clone())),
			Msg: fmt.Sprintf("%s output fits the destination buffer", name),
			Pos: pos,
		})
		x.weakly(!strong || x.pt.Loc(r).Summary, func() {
			x.assign(x.ntV(r), linear.ConstExpr(1))
			if exact {
				x.assign(x.lenV(r), off.Clone().Add(minLen.Clone()))
			} else {
				x.havoc(x.lenV(r))
				lo := off.Clone().Add(minLen.Clone())
				hi := off.Clone().Add(maxLen.Clone())
				lv := linear.VarExpr(x.lenV(r))
				x.assume(ip.Conj(
					linear.NewGe(lv.Sub(lo)),
					linear.NewGe(hi.Sub(lv.Clone())),
				))
			}
			x.havoc(x.valV(r))
		})
	}
	return nil
}

// constantFormat resolves a format atom to its literal string when the
// pointer can only reference one string-literal buffer at offset 0.
func (x *xform) constantFormat(e cast.Expr) (string, bool) {
	av := x.atom(e)
	if av.isRegionValued() && av.hasCell {
		l := x.pt.Loc(av.cell)
		if l.IsString {
			return l.StringVal, true
		}
	}
	if !av.hasCell {
		return "", false
	}
	regions := x.pt.Pt(av.cell)
	if len(regions) != 1 || !x.pt.Loc(regions[0]).IsString {
		return "", false
	}
	return x.pt.Loc(regions[0]).StringVal, true
}

// formatLength computes [min, max] bounds of the formatted output as linear
// expressions; exact reports min == max. It returns the %s arguments for
// null-termination checks.
func (x *xform) formatLength(format string, args []cast.Expr, pos clex.Pos, name string) (minLen, maxLen linear.Expr, exact bool, sArgs []cast.Expr, err error) {
	minLen = linear.ConstExpr(0)
	maxLen = linear.ConstExpr(0)
	exact = true
	argi := 0
	i := 0
	for i < len(format) {
		ch := format[i]
		if ch != '%' {
			minLen.AddConst(1)
			maxLen.AddConst(1)
			i++
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		// Skip width/precision flags conservatively.
		for i < len(format) && strings.ContainsRune("-+ #0123456789.", rune(format[i])) {
			exact = false
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			minLen.AddConst(1)
			maxLen.AddConst(1)
		case 'c':
			minLen.AddConst(1)
			maxLen.AddConst(1)
			argi++
		case 'd', 'i', 'u', 'x', 'X', 'o':
			minLen.AddConst(1)
			maxLen.AddConst(11)
			exact = false
			argi++
		case 's':
			if argi < len(args) {
				sArgs = append(sArgs, args[argi])
				av := x.atom(args[argi])
				added := false
				if regions := x.regionsOf(av); len(regions) == 1 {
					if off, ok := x.offsetExpr(av, regions[0]); ok {
						ln := linear.VarExpr(x.lenV(regions[0]))
						term := ln.Sub(off)
						minLen = minLen.Add(term)
						maxLen = maxLen.Add(term)
						added = true
					}
				}
				if !added {
					x.warnf(pos, "%s: %%s argument with ambiguous target; length untracked", name)
					exact = false
				}
			}
			argi++
		default:
			exact = false
			argi++
		}
		i++
	}
	return minLen, maxLen, exact, sArgs, nil
}
