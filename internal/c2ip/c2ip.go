// Package c2ip implements the C2IP transformation (paper §3.4): it takes
// the inlined, normalized CoreC procedure together with its procedural
// points-to information and produces a nondeterministic integer program
// that tracks the string and integer manipulations of the procedure.
//
// For every abstract location l, C2IP allocates the constraint variables of
// §3.4.1:
//
//	l.val      potential primitive values stored in l (for pointer cells
//	           this doubles as the raw address: 0 = null, >= 1 = valid)
//	l.offset   potential offsets of pointers stored in l
//	l.aSize    allocation size of the region l
//	l.is_nullt whether region l holds a null-terminated string (0/1)
//	l.len      index of the first null byte of region l
//
// Safety checks follow Table 3, statement translation Table 4, and summary
// locations force weak updates guarded by if (unknown) (§3.4.2.3).
package c2ip

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/corec"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/ppt"
)

// Options tunes the transformation.
type Options struct {
	// Naive selects the O(S*V^2) translation of the authors' earlier tool
	// [13]: pointer-offset variables are allocated per (cell, region) pair
	// instead of per cell, and statements are duplicated accordingly. Used
	// by the complexity-shape ablation (paper §3.4.2.4).
	Naive bool
	// NoCleanness disables the beyond-null-terminator cleanness checks,
	// leaving only hard bounds checks.
	NoCleanness bool
	// StrictZeroStore replaces the paper's Table 4 rule for storing a null
	// byte (len := offset unconditionally) with a guarded transfer that
	// accounts for a possible earlier terminator. Sound in corner cases
	// the paper's cleanness discipline excludes, at the cost of extra
	// false alarms; see DESIGN.md.
	StrictZeroStore bool
}

// Warning is a non-error diagnostic (e.g. non-constant format strings,
// paper §3.4.2.3).
type Warning struct {
	Pos clex.Pos
	Msg string
}

// Result bundles the generated program with transformation diagnostics.
type Result struct {
	Prog     *ip.Program
	Warnings []Warning
	// MemberResolved counts memory-access sites translated with a precise
	// offset/aSize constraint for every possible target region; MemberHavocked
	// counts sites where at least one channel had to be abandoned (unknown
	// target, untracked offset, or the legacy wide-store terminator havoc).
	MemberResolved int
	MemberHavocked int
}

// Transform generates the integer program for fd.
func Transform(prog *corec.Program, fd *cast.FuncDecl, pt *ppt.PPT, opts Options) (*Result, error) {
	x := &xform{
		prog: prog,
		fd:   fd,
		pt:   pt,
		out:  ip.New(fd.Name),
		opts: opts,
		file: prog.File,
	}
	if err := x.run(); err != nil {
		return nil, err
	}
	if err := x.out.Resolve(); err != nil {
		return nil, err
	}
	return &Result{
		Prog:           x.out,
		Warnings:       x.warnings,
		MemberResolved: x.memberResolved,
		MemberHavocked: x.memberHavocked,
	}, nil
}

type xform struct {
	prog     *corec.Program
	file     *cast.File
	fd       *cast.FuncDecl
	pt       *ppt.PPT
	out      *ip.Program
	opts     Options
	warnings []Warning
	nlbl     int

	// loadBind maps the body index of a conditional to the (temp, pointer)
	// pair of the character load that feeds it on every incoming path, so
	// the condition can be interpreted against the pointer's region (the
	// paper's condition-interpretation device of §3.4.2.2, surviving CoreC
	// normalization — including across the loop-head label of a lowered
	// "while (*s ...)").
	loadBind map[int]loadBinding
	// curIdx is the body index of the statement being translated.
	curIdx int

	// Access-site precision counters (see Result).
	memberResolved int
	memberHavocked int
}

// engine returns the layout engine the program was lowered under; nil (the
// Paper32 packed model) when the program predates the layout subsystem.
func (x *xform) engine() *ctypes.Engine { return x.prog.Layout }

// fieldSensitive reports whether the run's target provides layouts finer
// than the paper's packed model, enabling the guarded wide-store transfer
// and bitfield value opacity.
func (x *xform) fieldSensitive() bool { return x.engine().FieldSensitive() }

// accessPath returns the source access path recorded for a member-address
// temporary of the current function ("" when name is not such a temp).
func (x *xform) accessPath(name string) string {
	return x.prog.AccessPaths[x.fd.Name+"::"+name]
}

// bitfieldAccess reports whether name is a member-address temp for a
// bitfield member under a field-sensitive target. Bitfields share their
// storage unit with neighboring members, so loads and stores through such
// temps must be value-opaque.
func (x *xform) bitfieldAccess(name string) bool {
	if !x.fieldSensitive() || name == "" {
		return false
	}
	return strings.HasSuffix(x.accessPath(name), ":bits")
}

// loadBinding records "t = *p" feeding a conditional.
type loadBinding struct {
	temp string
	ptr  string
}

func (x *xform) warnf(pos clex.Pos, format string, args ...any) {
	x.warnings = append(x.warnings, Warning{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (x *xform) freshLabel(hint string) string {
	l := fmt.Sprintf("__ip_%s%d", hint, x.nlbl)
	x.nlbl++
	return l
}

// ---------------------------------------------------------------------------
// Constraint-variable naming

func (x *xform) valV(l ppt.LocID) int {
	return x.out.Space.Var(x.pt.Loc(l).Name + ".val")
}

func (x *xform) sizeV(l ppt.LocID) int {
	return x.out.Space.Var(x.pt.Loc(l).Name + ".aSize")
}

func (x *xform) ntV(l ppt.LocID) int {
	return x.out.Space.Var(x.pt.Loc(l).Name + ".is_nullt")
}

func (x *xform) lenV(l ppt.LocID) int {
	return x.out.Space.Var(x.pt.Loc(l).Name + ".len")
}

// offV returns the offset variable of cell l. In naive mode ([13]) offsets
// are tracked per (cell, region) pair; region < 0 requests the canonical
// variable used when no region context applies.
func (x *xform) offV(l ppt.LocID, region ppt.LocID) int {
	if x.opts.Naive && region >= 0 {
		return x.out.Space.Var(fmt.Sprintf("%s.offset@%s", x.pt.Loc(l).Name, x.pt.Loc(region).Name))
	}
	return x.out.Space.Var(x.pt.Loc(l).Name + ".offset")
}

// offVars returns every offset variable of cell l: one in normal mode, one
// per pointed-to region in naive mode.
func (x *xform) offVars(l ppt.LocID) []int {
	if !x.opts.Naive {
		return []int{x.offV(l, -1)}
	}
	targets := x.pt.Pt(l)
	if len(targets) == 0 {
		return []int{x.offV(l, -1)}
	}
	var out []int
	for _, r := range targets {
		out = append(out, x.offV(l, r))
	}
	return out
}

// ---------------------------------------------------------------------------
// Emission helpers

func (x *xform) emit(s ip.Stmt) { x.out.Emit(s) }

func (x *xform) assign(v int, e linear.Expr) { x.emit(&ip.Assign{V: v, E: e}) }

func (x *xform) havoc(v int) { x.emit(&ip.Havoc{V: v}) }

func (x *xform) assume(c ip.DNF) {
	if !c.IsTrue() {
		x.emit(&ip.Assume{C: c})
	}
}

// havocBool havocs a 0/1 variable and restores its range.
func (x *xform) havocBool(v int) {
	x.havoc(v)
	ge0 := linear.NewGe(linear.VarExpr(v))
	le1 := linear.NewGe(linear.ConstExpr(1).Sub(linear.VarExpr(v)))
	x.assume(ip.Conj(ge0, le1))
}

// lenInvariant is the convex instrumentation invariant relating a region's
// length, terminator flag, and size: 0 <= len && len + is_nullt <= aSize.
// When is_nullt = 1 this pins the first null inside the region; when
// is_nullt = 0 the abstract len is a don't-care kept in [0, aSize].
func (x *xform) lenInvariant(r ppt.LocID) ip.DNF {
	ln := linear.VarExpr(x.lenV(r))
	nt := linear.VarExpr(x.ntV(r))
	size := linear.VarExpr(x.sizeV(r))
	return ip.Conj(
		linear.NewGe(ln.Clone()),
		linear.NewGe(size.Sub(ln).Sub(nt)),
	)
}

// havocLen havocs a region length and restores the instrumentation
// invariant.
func (x *xform) havocLen(r ppt.LocID) {
	x.havoc(x.lenV(r))
	x.assume(x.lenInvariant(r))
}

// havocNTLen havocs a region's terminator flag and length together.
func (x *xform) havocNTLen(r ppt.LocID) {
	x.havocBool(x.ntV(r))
	x.havocLen(r)
}

// weakly emits body under an if (unknown) guard when weak is true.
func (x *xform) weakly(weak bool, body func()) {
	if !weak {
		body()
		return
	}
	skip := x.freshLabel("skip")
	x.emit(&ip.IfGoto{C: nil, Target: skip})
	body()
	x.emit(&ip.Label{Name: skip})
}

// choose emits one of the alternatives nondeterministically.
func (x *xform) choose(alts ...func()) {
	if len(alts) == 1 {
		alts[0]()
		return
	}
	end := x.freshLabel("end")
	var labels []string
	for i := 1; i < len(alts); i++ {
		labels = append(labels, x.freshLabel("alt"))
	}
	for i, alt := range alts {
		if i < len(labels) {
			x.emit(&ip.IfGoto{C: nil, Target: labels[i]})
		}
		alt()
		if i < len(alts)-1 {
			x.emit(&ip.Goto{Target: end})
		}
		if i < len(labels) {
			x.emit(&ip.Label{Name: labels[i]})
		}
	}
	x.emit(&ip.Label{Name: end})
}

// strongFor reports whether updates through this candidate set may be
// strong: a single non-summary location.
func (x *xform) strongFor(locs []ppt.LocID) bool {
	return len(locs) == 1 && !x.pt.Loc(locs[0]).Summary
}

// stringRegion reports whether location r carries string instrumentation
// (is_nullt/len): buffer regions, not scalar cells.
func (x *xform) stringRegion(r ppt.LocID) bool {
	return !x.pt.Loc(r).Scalar
}

// ---------------------------------------------------------------------------
// Entry prelude

// prelude constrains the initial state: declared region sizes, boolean
// ranges, string-literal contents, and fresh local buffers.
func (x *xform) prelude() {
	locals := map[string]bool{}
	if x.fd.Body != nil {
		for _, s := range x.fd.Body.Stmts {
			if ds, ok := s.(*cast.DeclStmt); ok {
				locals[ds.Decl.Name] = true
			}
		}
	}
	for _, l := range x.pt.Locs {
		// Region sizes are nonnegative; declared sizes are exact.
		if l.Size > 0 {
			e := linear.VarExpr(x.sizeV(l.ID))
			e = e.Sub(linear.ConstExpr(int64(l.Size)))
			x.assume(ip.Single(linear.NewEq(e)))
		} else {
			x.assume(ip.Single(linear.NewGe(linear.VarExpr(x.sizeV(l.ID)))))
		}
		// String instrumentation applies to buffer regions only; scalar
		// cells carry no terminator (keeping their is_nullt/len variables
		// out of the program saves polyhedra dimensions).
		if !x.stringRegion(l.ID) {
			continue
		}
		nt := x.ntV(l.ID)
		x.assume(ip.Conj(
			linear.NewGe(linear.VarExpr(nt)),
			linear.NewGe(linear.ConstExpr(1).Sub(linear.VarExpr(nt))),
		))
		if l.IsString {
			// A string literal is a null-terminated constant.
			x.assume(ip.Conj(
				eqConst(x.ntV(l.ID), 1),
				eqConst(x.lenV(l.ID), int64(len(l.StringVal))),
			))
		} else {
			// Instrumentation invariant (sound consequence of Def. 2.1).
			x.assume(x.lenInvariant(l.ID))
		}
	}

	// Pointer well-formedness (Def. 2.1 / K&R A7.7): every pointer value a
	// well-defined execution can construct satisfies
	// 0 <= offset <= aSize(target); out-of-range pointers are flagged at
	// their creation, so states entering P satisfy the invariant.
	for _, l := range x.pt.Locs {
		targets := x.pt.Pt(l.ID)
		if len(targets) == 0 {
			continue
		}
		for _, ov := range x.offVars(l.ID) {
			x.assume(ip.Single(linear.NewGe(linear.VarExpr(ov))))
			if len(targets) == 1 {
				size := linear.VarExpr(x.sizeV(targets[0]))
				x.assume(ip.Single(linear.NewGe(size.Sub(linear.VarExpr(ov)))))
			}
		}
	}

	// Formals that reach merged or invented cells point exactly at those
	// cells (Fig. 6(b): rv(f) is "the concrete location which holds the
	// value of *f"), so their offsets are zero and their values non-null.
	for _, p := range x.fd.Params {
		cell, ok := x.pt.Lv(p.Name)
		if !ok {
			continue
		}
		for {
			targets := x.pt.Pt(cell)
			if len(targets) != 1 {
				break
			}
			r := x.pt.Loc(targets[0])
			if !r.ExactBase || !r.Scalar {
				break
			}
			for _, ov := range x.offVars(cell) {
				x.assume(ip.Single(eqConst(ov, 0)))
			}
			x.assume(ip.Single(geConst(x.valV(cell), 1)))
			cell = targets[0]
		}
	}
	// Fresh local buffers start without a known null terminator
	// (Table 4's Alloc rule applied to stack allocation).
	for name := range locals {
		lv, ok := x.pt.Lv(name)
		if !ok {
			continue
		}
		l := x.pt.Loc(lv)
		if l.Size > 0 && !l.Scalar {
			x.assign(x.ntV(lv), linear.ConstExpr(0))
		}
	}
}

func eqConst(v int, k int64) linear.Constraint {
	e := linear.VarExpr(v)
	e = e.Sub(linear.ConstExpr(k))
	return linear.NewEq(e)
}

// geConst returns v >= k.
func geConst(v int, k int64) linear.Constraint {
	e := linear.VarExpr(v)
	e = e.Sub(linear.ConstExpr(k))
	return linear.NewGe(e)
}

// leConst returns v <= k.
func leConst(v int, k int64) linear.Constraint {
	e := linear.ConstExpr(k)
	e = e.Sub(linear.VarExpr(v))
	return linear.NewGe(e)
}

// run drives the translation.
func (x *xform) run() error {
	x.prelude()
	x.out.PreludeEnd = len(x.out.Stmts)
	x.loadBind = x.computeLoadBindings()
	for i, s := range x.fd.Body.Stmts {
		if ds, ok := s.(*cast.DeclStmt); ok {
			_ = ds // locals are handled by the prelude
			continue
		}
		x.curIdx = i
		if err := x.stmt(s); err != nil {
			return err
		}
	}
	x.emit(&ip.Label{Name: ExitLabel})
	return nil
}

// computeLoadBindings finds conditionals fed by a character load on every
// incoming control path. Handled shapes:
//
//	t = *p; if (t ...)                       (straight line)
//	t = *p; L:; if (t ...)  with every goto L preceded by t = *p
//	                                         (the lowered while (*s ...))
func (x *xform) computeLoadBindings() map[int]loadBinding {
	stmts := x.fd.Body.Stmts
	out := map[int]loadBinding{}

	isLoad := func(s cast.Stmt) (loadBinding, bool) {
		es, ok := s.(*cast.ExprStmt)
		if !ok {
			return loadBinding{}, false
		}
		a, ok := es.X.(*cast.Assign)
		if !ok {
			return loadBinding{}, false
		}
		lhs, ok := a.LHS.(*cast.Ident)
		if !ok {
			return loadBinding{}, false
		}
		u, ok := a.RHS.(*cast.Unary)
		if !ok || u.Op != cast.Deref {
			return loadBinding{}, false
		}
		pid, ok := u.X.(*cast.Ident)
		if !ok || x.elemSize(pid.Type()) != 1 {
			return loadBinding{}, false
		}
		return loadBinding{temp: lhs.Name, ptr: pid.Name}, true
	}
	condTemp := func(c cast.Expr) string {
		b, ok := c.(*cast.Binary)
		if !ok {
			return ""
		}
		if id, ok := b.X.(*cast.Ident); ok {
			if _, lit := b.Y.(*cast.IntLit); lit {
				return id.Name
			}
		}
		if id, ok := b.Y.(*cast.Ident); ok {
			if _, lit := b.X.(*cast.IntLit); lit {
				return id.Name
			}
		}
		return ""
	}
	endsFlow := func(s cast.Stmt) bool {
		switch s.(type) {
		case *cast.Goto, *cast.Return:
			return true
		}
		return false
	}
	gotosTo := map[string][]int{}
	for i, s := range stmts {
		if g, ok := s.(*cast.Goto); ok {
			gotosTo[g.Label] = append(gotosTo[g.Label], i)
		}
	}

	for i, s := range stmts {
		ifs, ok := s.(*cast.If)
		if !ok {
			continue
		}
		t := condTemp(ifs.Cond)
		if t == "" || i == 0 {
			continue
		}
		if b, ok := isLoad(stmts[i-1]); ok && b.temp == t {
			out[i] = b
			continue
		}
		lab, ok := stmts[i-1].(*cast.Labeled)
		if !ok || i < 2 {
			continue
		}
		// Every predecessor of the label must end with the same load.
		var preds []int
		if !endsFlow(stmts[i-2]) {
			preds = append(preds, i-2)
		}
		for _, g := range gotosTo[lab.Label] {
			if g == 0 {
				preds = nil
				break
			}
			preds = append(preds, g-1)
		}
		if len(preds) == 0 {
			continue
		}
		var bind loadBinding
		okAll := true
		for _, k := range preds {
			b, ok := isLoad(stmts[k])
			if !ok || b.temp != t || (bind.ptr != "" && b.ptr != bind.ptr) {
				okAll = false
				break
			}
			bind = b
		}
		if okAll {
			out[i] = bind
		}
	}
	return out
}
