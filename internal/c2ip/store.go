package c2ip

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/ppt"
)

// storeVal is the evaluated right-hand side of a store: value and offset
// channels, each possibly unknown, plus literal-zero classification for the
// Table 4 string rules.
type storeVal struct {
	val     linear.Expr
	valOK   bool
	isLit   bool
	lit     int64
	offFor  func(region ppt.LocID) (linear.Expr, bool)
	pointer bool
}

// evalStoreRHS evaluates the pure simple RHS of a store.
func (x *xform) evalStoreRHS(e cast.Expr) storeVal {
	noOff := func(ppt.LocID) (linear.Expr, bool) { return linear.Expr{}, false }
	switch r := e.(type) {
	case *cast.IntLit:
		return storeVal{val: linear.ConstExpr(r.Value), valOK: true, isLit: true, lit: r.Value, offFor: noOff}
	case *cast.Ident:
		v := x.atom(r)
		sv := storeVal{pointer: v.isPointerish() || v.isRegionValued()}
		if ve, ok := x.valExpr(v); ok {
			sv.val, sv.valOK = ve, true
		}
		sv.offFor = func(region ppt.LocID) (linear.Expr, bool) { return x.offsetExpr(v, region) }
		return sv
	case *cast.Unary:
		v := x.atom(r.X)
		sv := storeVal{offFor: noOff}
		if r.Op == cast.Neg {
			if ve, ok := x.valExpr(v); ok {
				sv.val, sv.valOK = ve.Scale(-1), true
			}
		}
		return sv
	case *cast.Binary:
		l := x.atom(r.X)
		rr := x.atom(r.Y)
		lPtr := l.isPointerish() || l.isRegionValued()
		rPtr := rr.isPointerish() || rr.isRegionValued()
		sv := storeVal{offFor: noOff, pointer: lPtr || rPtr}
		switch {
		case (r.Op == cast.Add || r.Op == cast.Sub) && lPtr && !rPtr:
			sz := x.elemSize(l.typ)
			sv.offFor = func(region ppt.LocID) (linear.Expr, bool) {
				le, ok1 := x.offsetExpr(l, region)
				re, ok2 := x.valExpr(rr)
				if !ok1 || !ok2 {
					return linear.Expr{}, false
				}
				if r.Op == cast.Sub {
					return le.Sub(re.Scale(sz)), true
				}
				return le.Add(re.Scale(sz)), true
			}
		case r.Op == cast.Add && rPtr && !lPtr:
			sz := x.elemSize(rr.typ)
			sv.offFor = func(region ppt.LocID) (linear.Expr, bool) {
				re, ok1 := x.offsetExpr(rr, region)
				le, ok2 := x.valExpr(l)
				if !ok1 || !ok2 {
					return linear.Expr{}, false
				}
				return re.Add(le.Scale(sz)), true
			}
		case r.Op == cast.Add || r.Op == cast.Sub:
			le, ok1 := x.valExpr(l)
			re, ok2 := x.valExpr(rr)
			if ok1 && ok2 {
				if r.Op == cast.Sub {
					sv.val, sv.valOK = le.Sub(re), true
				} else {
					sv.val, sv.valOK = le.Add(re), true
				}
			}
		case r.Op == cast.Mul && l.isLit:
			if re, ok := x.valExpr(rr); ok {
				sv.val, sv.valOK = re.Scale(l.lit), true
			}
		case r.Op == cast.Mul && rr.isLit:
			if le, ok := x.valExpr(l); ok {
				sv.val, sv.valOK = le.Scale(rr.lit), true
			}
		}
		return sv
	case *cast.Cast:
		v := x.atom(r.X)
		sv := storeVal{pointer: ctypes.IsPointer(ctypes.Decay(r.To))}
		if ve, ok := x.valExpr(v); ok && !v.isRegionValued() {
			sv.val, sv.valOK = ve, true
		}
		fromPtr := v.isPointerish() || v.isRegionValued()
		if fromPtr && sv.pointer {
			sv.offFor = func(region ppt.LocID) (linear.Expr, bool) { return x.offsetExpr(v, region) }
		} else {
			sv.offFor = noOff
		}
		return sv
	}
	return storeVal{offFor: noOff}
}

// store implements *p = rhs (Table 4, destructive updates).
func (x *xform) store(lhs *cast.Unary, rhs cast.Expr, a *cast.Assign) error {
	p := x.atom(lhs.X)
	if !p.hasCell {
		return fmt.Errorf("c2ip: store through unknown pointer at %s", a.Pos())
	}
	elem := x.elemSize(p.typ)
	regions := x.regionsOf(p)
	x.emitDerefAsserts(p, regions, elem, false, a.Pos(), "write through *"+p.name)
	sv := x.evalStoreRHS(rhs)
	if x.bitfieldAccess(p.name) {
		// A bitfield store rewrites only some bits of the storage unit: the
		// unit's resulting value is unknown even when the RHS is known.
		sv = storeVal{offFor: func(ppt.LocID) (linear.Expr, bool) { return linear.Expr{}, false }}
	}
	x.countStore(p, regions, elem)

	strong := x.strongFor(regions)
	for _, r := range regions {
		r := r
		weak := !strong || x.pt.Loc(r).Summary
		x.weakly(weak, func() {
			if sv.pointer || x.pt.Loc(r).Scalar {
				x.storeCell(r, sv)
			}
			if elem == 1 && !x.opts.NoCleanness && x.stringRegion(r) {
				x.storeChar(r, p, sv)
			} else if elem != 1 && !x.pt.Loc(r).Scalar {
				x.wideStore(r, p)
			}
		})
	}
	return nil
}

// countStore classifies a store site for the precision counters: resolved
// when every possible target region gets precise offset/aSize constraints
// and no terminator state is havocked wholesale.
func (x *xform) countStore(p aval, regions []ppt.LocID, elem int64) {
	resolved := len(regions) > 0
	for _, r := range regions {
		if _, ok := x.offsetExpr(p, r); !ok {
			resolved = false
		} else if elem != 1 && !x.fieldSensitive() && !x.pt.Loc(r).Scalar {
			// Legacy wide store: havocNTLen abandons the terminator channel.
			resolved = false
		}
	}
	if resolved {
		x.memberResolved++
	} else {
		x.memberHavocked++
	}
}

// countLoad classifies a load site: resolved when every possible target
// region is constrained through a tracked offset.
func (x *xform) countLoad(p aval, regions []ppt.LocID) {
	resolved := len(regions) > 0
	for _, r := range regions {
		if _, ok := x.offsetExpr(p, r); !ok {
			resolved = false
		}
	}
	if resolved {
		x.memberResolved++
	} else {
		x.memberHavocked++
	}
}

// wideStore handles a non-character store into a buffer region. Under the
// paper's packed model the terminator bookkeeping is simply no longer
// trustworthy and is havocked. Under a field-sensitive target with a tracked
// store offset, the store clobbers exactly the bytes at or beyond the
// offset, which splits into two sound cases:
//
//	A: is_nullt = 1 and len < off — the first terminator lies strictly
//	   before the stored bytes and survives untouched;
//	B: otherwise (is_nullt = 0 or len >= off) — no terminator existed
//	   before off, so whatever the store wrote, any new first terminator
//	   is at or beyond off.
//
// Union overlap soundness falls out of the same split: a store through a
// sibling union member lands at the overlapped member's offset 0, where
// case A (len < 0) is infeasible and the terminator state is fully
// havocked, exactly as the packed model would.
func (x *xform) wideStore(r ppt.LocID, p aval) {
	if !x.fieldSensitive() {
		x.havocNTLen(r)
		return
	}
	off, ok := x.offsetExpr(p, r)
	if !ok || !x.stringRegion(r) {
		x.havocNTLen(r)
		return
	}
	nt := x.ntV(r)
	ln := x.lenV(r)
	beyond := ip.Conj(eqConst(nt, 0)).
		Or(ip.Conj(eqConst(nt, 1), linear.NewGe(linear.VarExpr(ln).Sub(off.Clone()))))
	x.choose(
		func() { // A: an earlier terminator survives; nothing changes.
			x.assume(ip.Conj(
				eqConst(nt, 1),
				linear.NewGt(off.Clone().Sub(linear.VarExpr(ln))),
			))
		},
		func() { // B: any new first terminator is at or beyond off.
			x.assume(beyond)
			x.havocBool(nt)
			x.havocLen(r)
			x.assume(ip.Conj(eqConst(nt, 0)).
				Or(ip.Conj(eqConst(nt, 1), linear.NewGe(linear.VarExpr(ln).Sub(off.Clone())))))
		},
	)
}

// storeCell updates the stored-value channels of the region cell.
func (x *xform) storeCell(r ppt.LocID, sv storeVal) {
	if sv.valOK {
		x.assign(x.valV(r), sv.val.Clone())
	} else {
		x.havoc(x.valV(r))
	}
	if sv.pointer {
		if !x.opts.Naive {
			if e, ok := sv.offFor(-1); ok {
				x.assign(x.offV(r, -1), e)
			} else {
				x.havoc(x.offV(r, -1))
			}
		} else {
			for _, tr := range x.pt.Pt(r) {
				if e, ok := sv.offFor(tr); ok {
					x.assign(x.offV(r, tr), e)
				} else {
					x.havoc(x.offV(r, tr))
				}
			}
		}
	}
}

// storeChar applies the Table 4 string rules for a one-byte store at
// offset off(p) in region r.
func (x *xform) storeChar(r ppt.LocID, p aval, sv storeVal) {
	off, okOff := x.offsetExpr(p, r)
	nt := x.ntV(r)
	ln := x.lenV(r)
	if !okOff {
		// Unknown position: everything about the terminator is off.
		x.havocNTLen(r)
		return
	}

	zeroCase := func() {
		if !x.opts.StrictZeroStore {
			// Paper Table 4: writing '\0' at off makes it the first
			// terminator ("we can therefore safely assume that when
			// assigning a null-termination byte it is the first one",
			// §3.4.2.2). See DESIGN.md for the discussion of this
			// assumption's scope.
			x.assign(ln, off.Clone())
			x.assign(nt, linear.ConstExpr(1))
			return
		}
		// Strict mode: an earlier null (strictly before off) would stay
		// the first one:
		//   nt = 0                  -> len := off, nt := 1
		//   nt = 1 and len >= off   -> len := off (the first null moves)
		//   nt = 1 and len < off    -> unchanged (an earlier null wins)
		x.choose(
			func() {
				x.assume(ip.Conj(eqConst(nt, 0)).
					Or(ip.Conj(eqConst(nt, 1), linear.NewGe(linear.VarExpr(ln).Sub(off.Clone())))))
				x.assign(ln, off.Clone())
				x.assign(nt, linear.ConstExpr(1))
			},
			func() {
				x.assume(ip.Conj(
					eqConst(nt, 1),
					linear.NewGt(off.Clone().Sub(linear.VarExpr(ln))),
				))
			},
		)
	}
	overwriteCase := func() {
		// Nonzero char exactly at the terminator: the first null, if any
		// remains, now lies strictly beyond off.
		x.assume(ip.Conj(
			eqConst(nt, 1),
			linear.NewEq(linear.VarExpr(ln).Sub(off.Clone())),
		))
		x.havocBool(nt)
		x.havoc(ln)
		x.assume(x.lenInvariant(r))
		x.assume(ip.Single(linear.NewGt(linear.VarExpr(ln).Sub(off.Clone()))).
			Or(ip.Conj(eqConst(nt, 0))))
	}
	benignCase := func() {
		// Nonzero char away from the terminator: properties unchanged.
		notAt := ip.Conj(eqConst(nt, 0)).
			Or(ip.Conj(eqConst(nt, 1), linear.NewGt(linear.VarExpr(ln).Sub(off.Clone())))).
			Or(ip.Conj(eqConst(nt, 1), linear.NewGt(off.Clone().Sub(linear.VarExpr(ln)))))
		x.assume(notAt)
	}

	switch {
	case sv.isLit && sv.lit == 0:
		zeroCase()
	case sv.isLit:
		x.choose(overwriteCase, benignCase)
	case sv.valOK:
		ve := sv.val
		x.choose(
			func() {
				x.assume(ip.Single(linear.NewEq(ve.Clone())))
				zeroCase()
			},
			func() {
				x.assume(relDNF(cast.Ne, ve.Clone(), linear.ConstExpr(0)))
				overwriteCase()
			},
			func() {
				x.assume(relDNF(cast.Ne, ve.Clone(), linear.ConstExpr(0)))
				benignCase()
			},
		)
	default:
		x.choose(zeroCase, overwriteCase, benignCase)
	}
}

// ---------------------------------------------------------------------------
// Conditions

// cond translates "if (c) goto L" (CoreC conditions are atoms or
// atom-relop-atom).
func (x *xform) cond(c cast.Expr, target string) error {
	var trueD, falseD ip.DNF
	switch e := c.(type) {
	case *cast.Binary:
		l := x.atom(e.X)
		r := x.atom(e.Y)
		trueD = x.atomRel(e.Op, l, r)
		if trueD != nil {
			falseD = trueD.Negate()
		}
		// Condition interpretation (§3.4.2.2): "t = *p; if (t == 0)" is
		// understood against p's terminator.
		x.enrichLoadCond(e, l, r, &trueD, &falseD)
	case *cast.Ident:
		v := x.atom(e)
		if ve, ok := x.valExpr(v); ok {
			trueD = relDNF(cast.Ne, ve, linear.ConstExpr(0))
			falseD = trueD.Negate()
		}
	case *cast.IntLit:
		if e.Value != 0 {
			x.emit(&ip.Goto{Target: target})
			return nil
		}
		return nil
	}
	x.emit(&ip.IfGoto{C: trueD, FalseC: falseD, Target: target})
	return nil
}

// enrichLoadCond strengthens both branch conditions of a comparison
// involving the result of a character load feeding the conditional on
// every incoming path (see computeLoadBindings).
func (x *xform) enrichLoadCond(e *cast.Binary, l, r aval, trueD, falseD *ip.DNF) {
	bind, ok := x.loadBind[x.curIdx]
	if !ok {
		return
	}
	var lit aval
	var loaded aval
	switch {
	case l.name == bind.temp && r.isLit:
		loaded, lit = l, r
	case r.name == bind.temp && l.isLit:
		loaded, lit = r, l
	default:
		return
	}
	_ = loaded
	pcell, ok := x.pt.Lv(bind.ptr)
	if !ok {
		return
	}
	pv := aval{name: bind.ptr, cell: pcell, hasCell: true,
		typ: ctypes.PointerTo(ctypes.Char)}
	regions := x.pt.Pt(pcell)
	if len(regions) == 0 {
		return
	}

	// atTerm: the loaded char is the terminator of some target region.
	var atTerm, offTerm ip.DNF = ip.False(), ip.False()
	for _, reg := range regions {
		if !x.stringRegion(reg) {
			return
		}
		off, ok := x.offsetExpr(pv, reg)
		if !ok {
			return
		}
		nt := x.ntV(reg)
		ln := x.lenV(reg)
		atTerm = atTerm.Or(ip.Conj(
			eqConst(nt, 1),
			linear.NewEq(linear.VarExpr(ln).Sub(off)),
		))
		offTerm = offTerm.Or(ip.Conj(eqConst(nt, 0))).
			Or(ip.Conj(eqConst(nt, 1), linear.NewGt(linear.VarExpr(ln).Sub(off.Clone())))).
			Or(ip.Conj(eqConst(nt, 1), linear.NewGt(off.Clone().Sub(linear.VarExpr(ln)))))
	}

	isEqZero := e.Op == cast.Eq && lit.lit == 0
	isNeZero := e.Op == cast.Ne && lit.lit == 0
	eqNonzero := e.Op == cast.Eq && lit.lit != 0
	neNonzero := e.Op == cast.Ne && lit.lit != 0

	switch {
	case isEqZero:
		*trueD = (*trueD).And(atTerm)
		*falseD = (*falseD).And(offTerm)
	case isNeZero:
		*trueD = (*trueD).And(offTerm)
		*falseD = (*falseD).And(atTerm)
	case eqNonzero:
		// Matching a specific nonzero char: true branch is off-terminator.
		*trueD = (*trueD).And(offTerm)
	case neNonzero:
		// Failing to match a specific nonzero char: the false branch (the
		// char equals it) is off-terminator.
		*falseD = (*falseD).And(offTerm)
	}
}
