package c2ip

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/ppt"
)

// ExitLabel terminates the generated integer program.
const ExitLabel = "__ip_exit"

func (x *xform) stmt(s cast.Stmt) error {
	switch s := s.(type) {
	case *cast.Empty:
		return nil
	case *cast.Labeled:
		x.emit(&ip.Label{Name: s.Label})
		return nil
	case *cast.Goto:
		x.emit(&ip.Goto{Target: s.Label})
		return nil
	case *cast.Return:
		x.emit(&ip.Goto{Target: ExitLabel})
		return nil
	case *cast.Verify:
		return x.verify(s)
	case *cast.If:
		g, ok := s.Then.(*cast.Goto)
		if !ok {
			return fmt.Errorf("c2ip: non-CoreC if at %s", s.Pos())
		}
		return x.cond(s.Cond, g.Label)
	case *cast.ExprStmt:
		switch e := s.X.(type) {
		case *cast.Assign:
			return x.assignStmt(e)
		case *cast.Call:
			return x.callStmt("", e, e.Pos())
		}
	}
	return fmt.Errorf("c2ip: cannot translate %T at %s", s, s.Pos())
}

// ---------------------------------------------------------------------------
// Assignments

func (x *xform) assignStmt(a *cast.Assign) error {
	// Store through a pointer: *p = rhs.
	if u, ok := a.LHS.(*cast.Unary); ok && u.Op == cast.Deref {
		return x.store(u, a.RHS, a)
	}
	lhs, ok := a.LHS.(*cast.Ident)
	if !ok {
		return fmt.Errorf("c2ip: bad LHS at %s", a.Pos())
	}
	dst := x.atom(lhs)
	if !dst.hasCell {
		return nil // variable invisible to the PPT: no tracked state
	}
	weak := x.pt.Loc(dst.cell).Summary

	switch r := a.RHS.(type) {
	case *cast.IntLit:
		x.weakly(weak, func() {
			x.assign(x.valV(dst.cell), linear.ConstExpr(r.Value))
			if dst.isPointerish() {
				// p = 0 (or another literal address): offset untracked.
				x.setOffset(dst.cell, func(ppt.LocID) (linear.Expr, bool) {
					return linear.Expr{}, false
				})
			}
		})
		return nil
	case *cast.Ident:
		src := x.atom(r)
		x.weakly(weak, func() { x.copyCell(dst, src) })
		return nil
	case *cast.Unary:
		return x.assignUnary(dst, weak, r, a)
	case *cast.Binary:
		return x.assignBinary(dst, weak, r, a)
	case *cast.Cast:
		src := x.atom(r.X)
		x.weakly(weak, func() { x.castCell(dst, src, r.To) })
		return nil
	case *cast.Call:
		return x.callStmt(lhs.Name, r, a.Pos())
	}
	return fmt.Errorf("c2ip: bad RHS %T at %s", a.RHS, a.Pos())
}

// copyCell implements x = y for atoms.
func (x *xform) copyCell(dst, src aval) {
	if src.isRegionValued() {
		// Array decay: x points at src's base (a valid nonzero address).
		x.havoc(x.valV(dst.cell))
		x.assume(ip.Single(geConst(x.valV(dst.cell), 1)))
		x.setOffset(dst.cell, func(ppt.LocID) (linear.Expr, bool) {
			return linear.ConstExpr(0), true
		})
		return
	}
	if ve, ok := x.valExpr(src); ok {
		x.assign(x.valV(dst.cell), ve)
	} else {
		x.havoc(x.valV(dst.cell))
	}
	if dst.isPointerish() || src.isPointerish() {
		x.setOffset(dst.cell, func(region ppt.LocID) (linear.Expr, bool) {
			return x.offsetExpr(src, region)
		})
	}
}

// castCell implements x = (T)y: offsets survive pointer-to-pointer casts,
// values survive arithmetic casts, everything else becomes unknown
// (paper §3.4.2.3).
func (x *xform) castCell(dst, src aval, to ctypes.Type) {
	fromPtr := src.isPointerish() || src.isRegionValued()
	toPtr := ctypes.IsPointer(ctypes.Decay(to))
	if ve, ok := x.valExpr(src); ok && !src.isRegionValued() {
		x.assign(x.valV(dst.cell), ve)
	} else if src.isRegionValued() {
		x.havoc(x.valV(dst.cell))
		x.assume(ip.Single(geConst(x.valV(dst.cell), 1)))
	} else {
		x.havoc(x.valV(dst.cell))
	}
	switch {
	case fromPtr && toPtr:
		x.setOffset(dst.cell, func(region ppt.LocID) (linear.Expr, bool) {
			return x.offsetExpr(src, region)
		})
	case toPtr:
		// Integer reinterpreted as a pointer: unknown offset.
		x.setOffset(dst.cell, func(ppt.LocID) (linear.Expr, bool) {
			return linear.Expr{}, false
		})
	}
}

func (x *xform) assignUnary(dst aval, weak bool, u *cast.Unary, a *cast.Assign) error {
	switch u.Op {
	case cast.Deref:
		return x.load(dst, weak, u, a)
	case cast.Addr:
		x.weakly(weak, func() {
			x.havoc(x.valV(dst.cell))
			x.assume(ip.Single(geConst(x.valV(dst.cell), 1)))
			x.setOffset(dst.cell, func(ppt.LocID) (linear.Expr, bool) {
				return linear.ConstExpr(0), true
			})
		})
		return nil
	case cast.Neg:
		src := x.atom(u.X)
		x.weakly(weak, func() {
			if ve, ok := x.valExpr(src); ok {
				x.assign(x.valV(dst.cell), ve.Scale(-1))
			} else {
				x.havoc(x.valV(dst.cell))
			}
		})
		return nil
	case cast.LogNot:
		src := x.atom(u.X)
		x.weakly(weak, func() {
			ve, ok := x.valExpr(src)
			if !ok {
				x.havocBool(x.valV(dst.cell))
				return
			}
			x.choose(
				func() {
					x.assume(ip.Single(linear.NewEq(ve.Clone())))
					x.assign(x.valV(dst.cell), linear.ConstExpr(1))
				},
				func() {
					x.assume(relDNF(cast.Ne, ve.Clone(), linear.ConstExpr(0)))
					x.assign(x.valV(dst.cell), linear.ConstExpr(0))
				},
			)
		})
		return nil
	default: // BitNot
		x.weakly(weak, func() { x.havoc(x.valV(dst.cell)) })
		return nil
	}
}

// load implements x = *p (Table 4, fourth row, refined per §2.4: reading at
// the null terminator yields 0; reading a null-terminated region strictly
// before its terminator yields nonzero; anything else is unknown).
func (x *xform) load(dst aval, weak bool, u *cast.Unary, a *cast.Assign) error {
	p := x.atom(u.X)
	if !p.hasCell {
		x.weakly(weak, func() { x.havocCell(dst.cell) })
		return nil
	}
	regions := x.regionsOf(p)
	elem := x.elemSize(p.typ)
	// Snapshot loads emitted by the contract inliner (__preN = *p) are
	// specification artifacts, not program accesses: no safety check.
	if !strings.HasPrefix(dst.name, "__pre") {
		x.emitDerefAsserts(p, regions, elem, true, a.Pos(), "read through *"+p.name)
		x.countLoad(p, regions)
	}

	if len(regions) == 0 {
		x.weakly(weak, func() { x.havocCell(dst.cell) })
		return nil
	}
	if x.bitfieldAccess(p.name) {
		// A bitfield load extracts bits from a storage unit whose abstract
		// value covers the whole unit: the result is unknown.
		x.weakly(weak, func() { x.havocCell(dst.cell) })
		return nil
	}

	loadFrom := func(r ppt.LocID) func() {
		return func() {
			if dst.isPointerish() {
				// The region cell holds a pointer: copy its tracked value.
				x.assign(x.valV(dst.cell), linear.VarExpr(x.valV(r)))
				x.setOffset(dst.cell, func(region ppt.LocID) (linear.Expr, bool) {
					return linear.VarExpr(x.offV(r, region)), true
				})
				return
			}
			if elem != 1 || x.opts.NoCleanness || !x.stringRegion(r) {
				// Word-sized or scalar-cell load: the value channel.
				x.assign(x.valV(dst.cell), linear.VarExpr(x.valV(r)))
				return
			}
			// Character load: interpret against the terminator.
			off, okOff := x.offsetExpr(p, r)
			nt := x.ntV(r)
			ln := x.lenV(r)
			if !okOff {
				x.havoc(x.valV(dst.cell))
				return
			}
			x.choose(
				func() { // at the terminator
					x.assume(ip.Conj(
						eqConst(nt, 1),
						linear.NewEq(linear.VarExpr(ln).Sub(off)),
					))
					x.assign(x.valV(dst.cell), linear.ConstExpr(0))
				},
				func() { // strictly before the terminator: nonzero
					x.assume(ip.Conj(
						eqConst(nt, 1),
						linear.NewGt(linear.VarExpr(ln).Sub(off)),
					))
					x.havoc(x.valV(dst.cell))
					x.assume(relDNF(cast.Ne, linear.VarExpr(x.valV(dst.cell)), linear.ConstExpr(0)))
				},
				func() { // not null-terminated: unknown
					x.assume(ip.Single(linear.NewEq(linear.VarExpr(nt))))
					x.havoc(x.valV(dst.cell))
				},
			)
		}
	}
	var alts []func()
	for _, r := range regions {
		alts = append(alts, loadFrom(r))
	}
	x.weakly(weak, func() { x.choose(alts...) })

	return nil
}

// emitDerefAsserts emits one Table 3 assert per (pointer, region) pair.
func (x *xform) emitDerefAsserts(p aval, regions []ppt.LocID, elem int64, isRead bool, pos clex.Pos, msg string) {
	if len(regions) == 0 {
		x.emit(&ip.Assert{
			C:            ip.False(),
			Msg:          msg + " (pointer has no known target)",
			Pos:          pos,
			Unverifiable: true,
		})
		return
	}
	for _, r := range regions {
		off, ok := x.offsetExpr(p, r)
		if !ok {
			x.emit(&ip.Assert{
				C:            ip.False(),
				Msg:          msg + " (untracked pointer offset)",
				Pos:          pos,
				Unverifiable: true,
			})
			continue
		}
		x.emit(&ip.Assert{
			C:   x.derefCheck(off, r, elem, isRead),
			Msg: msg,
			Pos: pos,
		})
	}
}

func (x *xform) assignBinary(dst aval, weak bool, b *cast.Binary, a *cast.Assign) error {
	l := x.atom(b.X)
	r := x.atom(b.Y)
	lPtr := l.isPointerish() || l.isRegionValued()
	rPtr := r.isPointerish() || r.isRegionValued()

	switch {
	case b.Op.IsComparison():
		x.weakly(weak, func() { x.compareInto(dst, b.Op, l, r) })
		return nil
	case (b.Op == cast.Add || b.Op == cast.Sub) && lPtr && !rPtr:
		x.weakly(weak, func() { x.pointerArith(dst, b.Op, l, r, a) })
		return nil
	case b.Op == cast.Add && rPtr && !lPtr:
		x.weakly(weak, func() { x.pointerArith(dst, b.Op, r, l, a) })
		return nil
	case b.Op == cast.Sub && lPtr && rPtr:
		x.weakly(weak, func() { x.pointerDiff(dst, l, r) })
		return nil
	default:
		x.weakly(weak, func() { x.intArith(dst, b.Op, l, r) })
		return nil
	}
}

// compareInto sets dst to the 0/1 result of l op r.
func (x *xform) compareInto(dst aval, op cast.BinaryOp, l, r aval) {
	cond := x.atomRel(op, l, r)
	if cond == nil {
		x.havocBool(x.valV(dst.cell))
		return
	}
	neg := cond.Negate()
	x.choose(
		func() {
			x.assume(cond)
			x.assign(x.valV(dst.cell), linear.ConstExpr(1))
		},
		func() {
			x.assume(neg)
			x.assign(x.valV(dst.cell), linear.ConstExpr(0))
		},
	)
}

// atomRel builds the relation DNF between two atoms, using offsets for
// pointer comparisons (Table 4) and values otherwise; nil when untrackable.
func (x *xform) atomRel(op cast.BinaryOp, l, r aval) ip.DNF {
	lPtr := l.isPointerish() || l.isRegionValued()
	rPtr := r.isPointerish() || r.isRegionValued()
	// Pointer vs null literal: the address-value channel.
	if lPtr && r.isLit {
		if ve, ok := x.valExpr(l); ok {
			return relDNF(op, ve, linear.ConstExpr(r.lit))
		}
		return nil
	}
	if rPtr && l.isLit {
		if ve, ok := x.valExpr(r); ok {
			return relDNF(op, linear.ConstExpr(l.lit), ve)
		}
		return nil
	}
	if lPtr && rPtr {
		le, ok1 := x.offsetExpr(l, -1)
		re, ok2 := x.offsetExpr(r, -1)
		if !ok1 || !ok2 {
			return nil
		}
		return relDNF(op, le, re)
	}
	le, ok1 := x.valExpr(l)
	re, ok2 := x.valExpr(r)
	if !ok1 || !ok2 {
		return nil
	}
	return relDNF(op, le, re)
}

// pointerArith implements p = q ± i (Table 4 row 3) with the Table 3
// arithmetic bounds check, scaled by the element size.
func (x *xform) pointerArith(dst aval, op cast.BinaryOp, q, i aval, a *cast.Assign) {
	sz := x.elemSize(a.LHS.Type())
	if ctypes.IsPointer(ctypes.Decay(q.typ)) {
		sz = x.elemSize(q.typ)
	}
	ie, iOK := x.valExpr(i)
	regions := x.regionsOf(q)

	newOff := func(region ppt.LocID) (linear.Expr, bool) {
		qe, ok := x.offsetExpr(q, region)
		if !ok || !iOK {
			return linear.Expr{}, false
		}
		delta := ie.Scale(sz)
		if op == cast.Sub {
			return qe.Sub(delta), true
		}
		return qe.Add(delta), true
	}

	// Bounds assert per region.
	for _, r := range regions {
		off, ok := newOff(r)
		if !ok {
			x.emit(&ip.Assert{
				C:            ip.False(),
				Msg:          fmt.Sprintf("pointer arithmetic on %s (untracked operand)", q.name),
				Pos:          a.Pos(),
				Unverifiable: true,
			})
			continue
		}
		x.emit(&ip.Assert{
			C:   x.arithCheck(off, r),
			Msg: fmt.Sprintf("pointer arithmetic %s %s ...", q.name, op),
			Pos: a.Pos(),
		})
	}
	if len(regions) == 0 {
		x.emit(&ip.Assert{
			C:            ip.False(),
			Msg:          fmt.Sprintf("pointer arithmetic on %s (no known target)", q.name),
			Pos:          a.Pos(),
			Unverifiable: true,
		})
	}

	x.setOffset(dst.cell, newOff)
	x.havoc(x.valV(dst.cell))
	x.assume(ip.Single(geConst(x.valV(dst.cell), 1)))
}

// pointerDiff implements x = p - q: x * elem == off(p) - off(q).
func (x *xform) pointerDiff(dst aval, p, q aval) {
	pe, ok1 := x.offsetExpr(p, -1)
	qe, ok2 := x.offsetExpr(q, -1)
	x.havoc(x.valV(dst.cell))
	if !ok1 || !ok2 {
		return
	}
	sz := x.elemSize(p.typ)
	lhs := linear.VarExpr(x.valV(dst.cell)).Scale(sz)
	x.assume(ip.Single(linear.NewEq(lhs.Sub(pe.Sub(qe)))))
}

// intArith implements integer arithmetic on the value channel.
func (x *xform) intArith(dst aval, op cast.BinaryOp, l, r aval) {
	le, ok1 := x.valExpr(l)
	re, ok2 := x.valExpr(r)
	v := x.valV(dst.cell)
	lin := ok1 && ok2
	switch op {
	case cast.Add:
		if lin {
			x.assign(v, le.Add(re))
			return
		}
	case cast.Sub:
		if lin {
			x.assign(v, le.Sub(re))
			return
		}
	case cast.Mul:
		switch {
		case lin && l.isLit:
			x.assign(v, re.Scale(l.lit))
			return
		case lin && r.isLit:
			x.assign(v, le.Scale(r.lit))
			return
		}
	case cast.Shl:
		if lin && r.isLit && r.lit >= 0 && r.lit < 31 {
			x.assign(v, le.Scale(1<<uint(r.lit)))
			return
		}
	case cast.Rem:
		if r.isLit && r.lit > 0 {
			// -(n-1) <= x % n <= n-1 (C remainder may be negative).
			x.havoc(v)
			x.assume(ip.Conj(geConst(v, -(r.lit-1)), leConst(v, r.lit-1)))
			return
		}
	case cast.Div:
		if lin && r.isLit && r.lit > 0 {
			// x = a / n: n*x <= a <= n*x + (n-1) for a >= 0; keep only the
			// sound two-sided bound |n*x| <= |a| via havoc + nothing.
			x.havoc(v)
			return
		}
	}
	x.havoc(v)
	if dst.isPointerish() {
		x.setOffset(dst.cell, func(ppt.LocID) (linear.Expr, bool) {
			return linear.Expr{}, false
		})
	}
}
