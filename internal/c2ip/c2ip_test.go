package c2ip

import (
	"strings"
	"testing"

	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/inline"
	"repro/internal/pointer"
	"repro/internal/ppt"
)

// transform runs the front half of the pipeline and C2IP for one function.
func transform(t *testing.T, src, fn string, opts Options) string {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	inlined, err := inline.File(prog, fn)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	nprog, err := corec.Renormalize(prog, inlined)
	if err != nil {
		t.Fatalf("renormalize: %v", err)
	}
	fd := nprog.File.Lookup(fn)
	g := pointer.Analyze(nprog, pointer.Inclusion)
	pt := ppt.Build(nprog, fd, g, ppt.Options{})
	res, err := Transform(nprog, fd, pt, opts)
	if err != nil {
		t.Fatalf("c2ip: %v", err)
	}
	return res.Prog.String()
}

// TestC2IPTable4Alloc: p = malloc(i) sets offset 0, aSize from the
// argument, and clears the terminator flag (Table 4 row 2).
func TestC2IPTable4Alloc(t *testing.T) {
	void := `
void *malloc(int n);
void f(int n) {
    char *p;
    p = (char*)malloc(n);
}
`
	ipText := transform(t, void, "f", Options{})
	// The cast binds the malloc result to a temp first; the offset-zero
	// rule fires there and p copies it.
	for _, want := range []string{
		".offset := 0",
		".aSize := lv(n).val",
		".is_nullt := 0",
	} {
		if !strings.Contains(ipText, want) {
			t.Errorf("missing %q in:\n%s", want, ipText)
		}
	}
}

// TestC2IPTable4PointerArith: p = q + i updates the offset linearly and
// emits the Table 3 arithmetic check 0 <= off + i <= aSize.
func TestC2IPTable4PointerArith(t *testing.T) {
	src := `
void f(char *q, int i) {
    char *p;
    p = q + i;
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "lv(p).offset := lv(q).offset + lv(i).val") {
		t.Errorf("offset transfer missing:\n%s", ipText)
	}
	if !strings.Contains(ipText, "assert(lv(q).offset + lv(i).val >= 0 && rv(q).aSize - lv(q).offset - lv(i).val >= 0)") {
		t.Errorf("Table 3 arithmetic check missing:\n%s", ipText)
	}
}

// TestC2IPTable4ZeroStore: *p = '\0' makes p's position the terminator
// (Table 4, destructive update case i).
func TestC2IPTable4ZeroStore(t *testing.T) {
	src := `
void f(char *p) {
    *p = '\0';
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, ".len := lv(p).offset") {
		t.Errorf("len update missing:\n%s", ipText)
	}
	if !strings.Contains(ipText, ".is_nullt := 1") {
		t.Errorf("terminator flag update missing:\n%s", ipText)
	}
}

// TestC2IPTable3DerefCheck: a character read gets the full cleanness
// disjunction; a write gets the pure bounds check.
func TestC2IPTable3DerefCheck(t *testing.T) {
	src := `
void f(char *p) {
    char c;
    c = *p;
    *p = 'x';
}
`
	ipText := transform(t, src, "f", Options{})
	// Read: (off>=0 && nt=1 && len-off>=0) || (off>=0 && nt=0 && aSize-off-1>=0)
	if !strings.Contains(ipText, "rv(p).is_nullt = 1 && rv(p).len - lv(p).offset >= 0") {
		t.Errorf("read cleanness disjunct missing:\n%s", ipText)
	}
	if !strings.Contains(ipText, "rv(p).is_nullt = 0 && rv(p).aSize - lv(p).offset >= 1") {
		t.Errorf("read bounds disjunct missing:\n%s", ipText)
	}
	// Write: plain bounds.
	if !strings.Contains(ipText, "assert(lv(p).offset >= 0 && rv(p).aSize - lv(p).offset >= 1); // write through *p") {
		t.Errorf("write bounds check missing:\n%s", ipText)
	}
}

// TestC2IPTable4Conditions: pointer comparisons become offset comparisons
// (Table 4: p > q -> lvp.offset > lvq.offset).
func TestC2IPTable4Conditions(t *testing.T) {
	src := `
void f(char *p, char *q) {
    int x;
    x = 0;
    if (p > q) { x = 1; }
}
`
	ipText := transform(t, src, "f", Options{})
	// The normalizer inverts the condition ("if (p <= q) skip the body").
	if !strings.Contains(ipText, "if (-lv(p).offset + lv(q).offset >= 0) goto") {
		t.Errorf("pointer comparison not translated to offsets:\n%s", ipText)
	}
}

// TestC2IPConditionInterpretation: "t = *p; if (t == 0)" is enriched with
// the terminator equation (§3.4.2.2).
func TestC2IPConditionInterpretation(t *testing.T) {
	src := `
void f(char *p) {
    char c;
    int n;
    n = 0;
    c = *p;
    if (c == '\0') { n = 1; }
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "rv(p).len - lv(p).offset = 0") {
		t.Errorf("terminator enrichment missing on the == 0 branch:\n%s", ipText)
	}
}

// TestC2IPWeakUpdates: a summary location (heap node allocated in a loop)
// forces if(unknown)-guarded updates (§3.4.2.3).
func TestC2IPWeakUpdates(t *testing.T) {
	src := `
void *malloc(int n);
void f(int k) {
    char *p;
    int i;
    i = 0;
    while (i < k) {
        p = (char*)malloc(8);
        *p = '\0';
        i = i + 1;
    }
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "if (unknown) goto") {
		t.Errorf("no weak update emitted for a loop allocation site:\n%s", ipText)
	}
}

// TestC2IPContractAttributes: the Table 4 attribute translations
// (p.alloc -> aSize - offset, p.strlen -> len - offset, is_nullt).
func TestC2IPContractAttributes(t *testing.T) {
	src := `
void f(char *p)
    requires (is_nullt(p) && alloc(p) > strlen(p) + 2 && offset(p) == 0)
{
    *p = 'x';
}
`
	ipText := transform(t, src, "f", Options{})
	for _, want := range []string{
		"rv(p).is_nullt = 1",            // is_nullt(p)
		"rv(p).len - lv(p).offset >= 0", // ... and the string starts at or after p
		"rv(p).aSize",                   // alloc attribute
		"lv(p).offset = 0",              // offset(p) == 0
	} {
		if !strings.Contains(ipText, want) {
			t.Errorf("missing %q in:\n%s", want, ipText)
		}
	}
}

// TestC2IPUnverifiable: contract conditions outside linear arithmetic are
// flagged conservatively rather than dropped.
func TestC2IPUnverifiable(t *testing.T) {
	src := `
void g(int a, int b)
    requires (a * b >= 0);
void f(int x, int y) {
    g(x, y);
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "assert(false)") {
		t.Errorf("nonlinear precondition should yield a conservative assert:\n%s", ipText)
	}
}

// TestC2IPNaiveMode: the [13]-style translation allocates per-pair offset
// variables.
func TestC2IPNaiveMode(t *testing.T) {
	src := `
void f(int c) {
    char a[8];
    char b[8];
    char *p;
    p = a;
    if (c) { p = b; }
    p = p + 1;
}
`
	normal := transform(t, src, "f", Options{})
	naive := transform(t, src, "f", Options{Naive: true})
	if !strings.Contains(naive, ".offset@") {
		t.Errorf("naive mode did not allocate pair variables:\n%s", naive)
	}
	if strings.Contains(normal, ".offset@") {
		t.Error("normal mode leaked pair variables")
	}
	if len(naive) <= len(normal) {
		t.Error("naive translation should be strictly larger")
	}
}

// TestC2IPSprintfDerivedContract: sprintf gets a per-call-site contract
// from its constant format string (§3.4.2.3).
func TestC2IPSprintfDerivedContract(t *testing.T) {
	src := `
int sprintf(char *s, char *format, ...);
char buf[16];
void f(char *name)
    requires (is_nullt(name))
{
    sprintf(buf, "hi %s", name);
}
`
	ipText := transform(t, src, "f", Options{})
	if !strings.Contains(ipText, "sprintf output fits the destination buffer") {
		t.Errorf("derived sprintf precondition missing:\n%s", ipText)
	}
	if !strings.Contains(ipText, "%s argument of sprintf must be null-terminated") {
		t.Errorf("%%s argument check missing:\n%s", ipText)
	}
}

// TestC2IPNonConstantFormatWarns reproduces the paper's "CSSV warns in
// cases where the format parameter is not a constant".
func TestC2IPNonConstantFormatWarns(t *testing.T) {
	src := `
int sprintf(char *s, char *format, ...);
char buf[16];
void f(char *fmt)
    requires (is_nullt(fmt))
{
    sprintf(buf, fmt);
}
`
	f, _ := cparse.ParseFile("t.c", src)
	prog, _ := corec.Normalize(f)
	inlined, _ := inline.File(prog, "f")
	nprog, _ := corec.Renormalize(prog, inlined)
	fd := nprog.File.Lookup("f")
	g := pointer.Analyze(nprog, pointer.Inclusion)
	pt := ppt.Build(nprog, fd, g, ppt.Options{})
	res, err := Transform(nprog, fd, pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "format parameter is not a constant") {
			found = true
		}
	}
	if !found {
		t.Errorf("no warning for non-constant format; warnings: %v", res.Warnings)
	}
}
