package polyhedra

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

// expr builds a linear expression from coefficient/variable pairs plus a
// constant: expr(c, k1, v1, k2, v2, ...) = c + k1*x_v1 + k2*x_v2 + ...
func expr(c int64, terms ...int64) linear.Expr {
	e := linear.ConstExpr(c)
	for i := 0; i+1 < len(terms); i += 2 {
		e.AddTerm(int(terms[i+1]), terms[i])
	}
	return e
}

func ge(c int64, terms ...int64) linear.Constraint { return linear.NewGe(expr(c, terms...)) }
func eq(c int64, terms ...int64) linear.Constraint { return linear.NewEq(expr(c, terms...)) }

func TestUniverseAndBottom(t *testing.T) {
	u := Universe(3)
	if u.IsEmpty() || !u.IsUniverse() {
		t.Fatal("universe misclassified")
	}
	b := Bottom(3)
	if !b.IsEmpty() {
		t.Fatal("bottom not empty")
	}
	if !u.Includes(b) || b.Includes(u) {
		t.Fatal("inclusion wrong for universe/bottom")
	}
}

func TestMeetEmpty(t *testing.T) {
	// x >= 1 and -x >= 0 is empty.
	p := FromSystem(linear.System{ge(-1, 1, 0), ge(0, -1, 0)}, 1)
	if !p.IsEmpty() {
		t.Fatalf("expected empty, got %s", p.String(nil))
	}
}

func TestSimpleBox(t *testing.T) {
	// 0 <= x <= 4, 0 <= y <= 2.
	p := FromSystem(linear.System{
		ge(0, 1, 0), ge(4, -1, 0),
		ge(0, 1, 1), ge(2, -1, 1),
	}, 2)
	if p.IsEmpty() {
		t.Fatal("box empty")
	}
	lo, hi := p.Bounds(0)
	if lo == nil || hi == nil || lo.Cmp(big.NewRat(0, 1)) != 0 || hi.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("bounds x = [%v, %v], want [0, 4]", lo, hi)
	}
	if !p.Entails(ge(0, 1, 0)) {
		t.Error("box should entail x >= 0")
	}
	if p.Entails(ge(-1, 1, 0)) {
		t.Error("box should not entail x >= 1")
	}
	// x + y <= 6 holds; x + y <= 5 does not.
	if !p.Entails(ge(6, -1, 0, -1, 1)) {
		t.Error("should entail x + y <= 6")
	}
	if p.Entails(ge(5, -1, 0, -1, 1)) {
		t.Error("should not entail x + y <= 5")
	}
}

func TestEqualityPlane(t *testing.T) {
	// x == y over 2 vars.
	p := FromSystem(linear.System{eq(0, 1, 0, -1, 1)}, 2)
	if p.IsEmpty() {
		t.Fatal("plane empty")
	}
	if !p.Entails(eq(0, 1, 0, -1, 1)) {
		t.Error("plane should entail its own equation")
	}
	if !p.Entails(ge(0, 1, 0, -1, 1)) {
		t.Error("x == y should entail x >= y")
	}
	if p.Entails(ge(0, 1, 0)) {
		t.Error("x == y should not bound x")
	}
}

func TestJoinConvexHull(t *testing.T) {
	// Hull of {x==0} and {x==4} in 1D is 0 <= x <= 4.
	p := FromSystem(linear.System{eq(0, 1, 0)}, 1)
	q := FromSystem(linear.System{eq(-4, 1, 0)}, 1)
	j := p.Join(q)
	lo, hi := j.Bounds(0)
	if lo == nil || hi == nil || lo.Cmp(big.NewRat(0, 1)) != 0 || hi.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("hull bounds = [%v, %v], want [0, 4]", lo, hi)
	}
	if !j.Includes(p) || !j.Includes(q) {
		t.Error("hull must include both operands")
	}
}

func TestJoinRelational(t *testing.T) {
	// Hull of {x==0, y==0} and {x==2, y==4}: contains y == 2x relation.
	p := FromSystem(linear.System{eq(0, 1, 0), eq(0, 1, 1)}, 2)
	q := FromSystem(linear.System{eq(-2, 1, 0), eq(-4, 1, 1)}, 2)
	j := p.Join(q)
	if !j.Entails(eq(0, 2, 0, -1, 1)) {
		t.Errorf("hull should entail y == 2x, got %s", j.String(nil))
	}
	if !j.Entails(ge(0, 1, 0)) || !j.Entails(ge(2, -1, 0)) {
		t.Errorf("hull should bound 0 <= x <= 2, got %s", j.String(nil))
	}
}

func TestAssignTranslation(t *testing.T) {
	// From x == 3, assign x := x + 1 -> x == 4.
	p := FromSystem(linear.System{eq(-3, 1, 0)}, 1)
	e := expr(1, 1, 0) // x + 1
	q := p.Assign(0, e)
	if !q.Entails(eq(-4, 1, 0)) {
		t.Errorf("after x := x+1 from x==3: %s, want x == 4", q.String(nil))
	}
}

func TestAssignRelation(t *testing.T) {
	// From 0 <= x <= 2 (y unconstrained), assign y := x + 5.
	p := FromSystem(linear.System{ge(0, 1, 0), ge(2, -1, 0)}, 2)
	q := p.Assign(1, expr(5, 1, 0))
	if !q.Entails(eq(-5, -1, 0, 1, 1)) { // y - x == 5
		t.Errorf("y := x + 5 should give y - x == 5, got %s", q.String(nil))
	}
	if !q.Entails(ge(-5, 1, 1)) || !q.Entails(ge(7, -1, 1)) {
		t.Errorf("5 <= y <= 7 expected, got %s", q.String(nil))
	}
}

func TestAssignNonInvertible(t *testing.T) {
	// From x == 7, y == 1: x := 0. Old info about x must vanish, y kept.
	p := FromSystem(linear.System{eq(-7, 1, 0), eq(-1, 1, 1)}, 2)
	q := p.Assign(0, expr(0))
	if !q.Entails(eq(0, 1, 0)) {
		t.Errorf("x == 0 expected, got %s", q.String(nil))
	}
	if !q.Entails(eq(-1, 1, 1)) {
		t.Errorf("y == 1 should be preserved, got %s", q.String(nil))
	}
	if q.Entails(eq(-7, 1, 0)) {
		t.Error("stale x == 7 retained")
	}
}

func TestHavoc(t *testing.T) {
	p := FromSystem(linear.System{eq(-3, 1, 0), eq(0, 1, 0, -1, 1)}, 2) // x==3, x==y
	q := p.Havoc(0)
	if q.Entails(eq(-3, 1, 0)) {
		t.Error("x constraint should be dropped")
	}
	if !q.Entails(eq(-3, 1, 1)) {
		t.Errorf("y == 3 should survive havoc of x, got %s", q.String(nil))
	}
}

func TestSubstitute(t *testing.T) {
	// p: x >= 10. wp(x := y + 1, p) = y + 1 >= 10 = y >= 9.
	p := FromSystem(linear.System{ge(-10, 1, 0)}, 2)
	q := p.Substitute(0, expr(1, 1, 1))
	if !q.Entails(ge(-9, 1, 1)) {
		t.Errorf("substitution result %s, want y >= 9", q.String(nil))
	}
	if q.Entails(ge(-10, 1, 0)) {
		t.Error("x constraint should be gone after substitution")
	}
}

func TestForget(t *testing.T) {
	p := FromSystem(linear.System{ge(0, 1, 0), ge(5, -1, 0, -1, 1)}, 2)
	q := p.Forget(0)
	if q.Entails(ge(0, 1, 0)) {
		t.Error("constraint on x must be dropped")
	}
	// The x+y <= 5 constraint mentions x, so it is dropped too (Forget is
	// syntactic, unlike Havoc).
	if q.Entails(ge(5, -1, 1)) {
		t.Errorf("forget should not derive projections, got %s", q.String(nil))
	}
}

func TestWidenStabilizes(t *testing.T) {
	// Classic loop: x == 0 widened with hull(x==0, x==1) must give x >= 0.
	p0 := FromSystem(linear.System{eq(0, 1, 0)}, 1)
	p1 := p0.Join(FromSystem(linear.System{eq(-1, 1, 0)}, 1)) // 0 <= x <= 1
	w := p0.Widen(p1)
	if !w.Entails(ge(0, 1, 0)) {
		t.Errorf("widening lost x >= 0: %s", w.String(nil))
	}
	if w.Entails(ge(1, -1, 0)) {
		t.Errorf("widening kept unstable upper bound: %s", w.String(nil))
	}
	// Further iterates are stable.
	p2 := w.Join(FromSystem(linear.System{eq(-2, 1, 0)}, 1))
	w2 := w.Widen(p2)
	if !w2.Equal(w) {
		t.Errorf("widening not stable: %s vs %s", w2.String(nil), w.String(nil))
	}
}

func TestWidenKeepsStableRelation(t *testing.T) {
	// i - j stays equal while both grow: widening should keep i == j.
	p0 := FromSystem(linear.System{eq(0, 1, 0, -1, 1), eq(0, 1, 0)}, 2) // i==j, i==0
	p1 := FromSystem(linear.System{eq(0, 1, 0, -1, 1), ge(0, 1, 0), ge(1, -1, 0)}, 2)
	w := p0.Widen(p0.Join(p1))
	if !w.Entails(eq(0, 1, 0, -1, 1)) {
		t.Errorf("widening lost stable i == j: %s", w.String(nil))
	}
}

func TestSamplePoint(t *testing.T) {
	p := FromSystem(linear.System{ge(-2, 1, 0), ge(8, -1, 0), eq(-1, 1, 1)}, 2)
	pt := p.SamplePoint()
	if pt == nil {
		t.Fatal("no sample point")
	}
	x := pt[0]
	y := pt[1]
	if x.Cmp(big.NewRat(2, 1)) < 0 || x.Cmp(big.NewRat(8, 1)) > 0 {
		t.Errorf("sample x = %v out of [2,8]", x)
	}
	if y.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("sample y = %v, want 1", y)
	}
}

func TestSystemOver(t *testing.T) {
	// x == y + 1, y == z. Keeping only {x, z} should yield x == z + 1.
	p := FromSystem(linear.System{eq(-1, 1, 0, -1, 1), eq(0, 1, 1, -1, 2)}, 3)
	sys := p.SystemOver(func(v int) bool { return v != 1 })
	q := FromSystem(sys, 3)
	if !q.Entails(eq(-1, 1, 0, -1, 2)) {
		t.Errorf("projection lost x == z + 1: %s", sys.String(nil))
	}
	for _, c := range sys {
		for _, v := range c.E.Vars() {
			if v == 1 {
				t.Errorf("projected system mentions eliminated variable: %s", sys.String(nil))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Randomized differential testing against integer-point enumeration.

type point3 [3]int64

func allPoints(lim int64) []point3 {
	var pts []point3
	for x := -lim; x <= lim; x++ {
		for y := -lim; y <= lim; y++ {
			for z := -lim; z <= lim; z++ {
				pts = append(pts, point3{x, y, z})
			}
		}
	}
	return pts
}

func satisfies(sys linear.System, p point3) bool {
	pt := []*big.Int{big.NewInt(p[0]), big.NewInt(p[1]), big.NewInt(p[2])}
	for _, c := range sys {
		if !c.Holds(pt) {
			return false
		}
	}
	return true
}

func randSystem(rng *rand.Rand, ncons int) linear.System {
	var sys linear.System
	for i := 0; i < ncons; i++ {
		e := linear.ConstExpr(rng.Int63n(9) - 4)
		for v := 0; v < 3; v++ {
			if rng.Intn(2) == 0 {
				e.AddTerm(v, rng.Int63n(5)-2)
			}
		}
		if rng.Intn(4) == 0 {
			sys = append(sys, linear.NewEq(e))
		} else {
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// TestRandomizedMinimization checks that conversion round-trips preserve the
// integer points of the polyhedron.
func TestRandomizedMinimization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := allPoints(3)
	for trial := 0; trial < 200; trial++ {
		sys := randSystem(rng, 1+rng.Intn(5))
		p := FromSystem(sys, 3)
		min := p.System() // forces cons -> gens -> cons
		for _, pt := range pts {
			in := satisfies(sys, pt)
			out := satisfies(min, pt)
			if p.IsEmpty() {
				if in {
					t.Fatalf("trial %d: p empty but %v satisfies %s", trial, pt, sys.String(nil))
				}
				continue
			}
			if in != out {
				t.Fatalf("trial %d: point %v: original=%v minimized=%v\norig: %s\nmin: %s",
					trial, pt, in, out, sys.String(nil), min.String(nil))
			}
		}
	}
}

// TestRandomizedJoinSound checks P subset join and Q subset join, and that the
// join does not contain integer points far outside the hull vertices' box.
func TestRandomizedJoinSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := allPoints(3)
	for trial := 0; trial < 120; trial++ {
		sysP := randSystem(rng, 1+rng.Intn(4))
		sysQ := randSystem(rng, 1+rng.Intn(4))
		p := FromSystem(sysP, 3)
		q := FromSystem(sysQ, 3)
		j := p.Join(q)
		if !j.Includes(p) || !j.Includes(q) {
			t.Fatalf("trial %d: join does not include operands", trial)
		}
		jsys := j.System()
		for _, pt := range pts {
			if (satisfies(sysP, pt) || satisfies(sysQ, pt)) && !j.IsEmpty() && !satisfies(jsys, pt) {
				t.Fatalf("trial %d: point %v in operand but not join", trial, pt)
			}
		}
	}
}

// TestRandomizedMeetExact checks meet against pointwise conjunction.
func TestRandomizedMeetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := allPoints(3)
	for trial := 0; trial < 120; trial++ {
		sysP := randSystem(rng, 1+rng.Intn(3))
		sysQ := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sysP, 3)
		q := FromSystem(sysQ, 3)
		m := p.Meet(q)
		msys := m.System()
		for _, pt := range pts {
			in := satisfies(sysP, pt) && satisfies(sysQ, pt)
			out := !m.IsEmpty() && satisfies(msys, pt)
			if in != out {
				t.Fatalf("trial %d: meet wrong at %v: want %v got %v", trial, pt, in, out)
			}
		}
	}
}

// TestRandomizedAssignSound checks that the image of every integer point of
// p under an assignment lands inside Assign's result.
func TestRandomizedAssignSound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := allPoints(3)
	for trial := 0; trial < 120; trial++ {
		sys := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sys, 3)
		v := rng.Intn(3)
		e := linear.ConstExpr(rng.Int63n(7) - 3)
		for u := 0; u < 3; u++ {
			if rng.Intn(2) == 0 {
				e.AddTerm(u, rng.Int63n(5)-2)
			}
		}
		res := p.Assign(v, e)
		rsys := res.System()
		for _, pt := range pts {
			if !satisfies(sys, pt) {
				continue
			}
			bp := []*big.Int{big.NewInt(pt[0]), big.NewInt(pt[1]), big.NewInt(pt[2])}
			nv := e.Eval(bp)
			img := pt
			img[v] = nv.Int64()
			if res.IsEmpty() || !satisfies(rsys, img) {
				t.Fatalf("trial %d: image %v of %v not in assign result %s (v=%d, e=%s)",
					trial, img, pt, rsys.String(nil), v, e.String(nil))
			}
		}
	}
}

// TestRandomizedWidenSound checks extensiveness of widening.
func TestRandomizedWidenSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		p := FromSystem(randSystem(rng, 1+rng.Intn(3)), 3)
		q := p.Join(FromSystem(randSystem(rng, 1+rng.Intn(3)), 3))
		w := p.Widen(q)
		if !w.Includes(p) || !w.Includes(q) {
			t.Fatalf("trial %d: widening not extensive", trial)
		}
	}
}

// TestRandomizedInclusion cross-checks Includes against point enumeration.
func TestRandomizedInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := allPoints(2)
	for trial := 0; trial < 150; trial++ {
		sysP := randSystem(rng, 1+rng.Intn(3))
		sysQ := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sysP, 3)
		q := FromSystem(sysQ, 3)
		if p.Includes(q) {
			for _, pt := range pts {
				if satisfies(sysQ, pt) && !satisfies(sysP, pt) && !q.IsEmpty() {
					t.Fatalf("trial %d: Includes true but point %v in Q only", trial, pt)
				}
			}
		}
	}
}
