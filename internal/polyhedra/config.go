package polyhedra

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/budget"
	"repro/internal/linear"
)

// Config carries per-run knobs and statistics for the polyhedra domain.
// There is deliberately no mutable package-level configuration: concurrent
// analyses each thread their own Config so they cannot race or
// cross-contaminate each other's precision accounting.
//
// A nil *Config is valid and means defaults (DefaultMaxRays, hybrid
// kernel, no budget); every method is nil-safe. Polyhedra propagate the
// Config of the receiver (falling back to the other operand) through all
// operations, so constructing the entry states with a Config is enough to
// govern a whole fixpoint computation.
type Config struct {
	// MaxRays caps intermediate generator counts during the
	// constraint-to-generator conversion; exceeding it drops constraints
	// (a sound over-approximation). 0 means DefaultMaxRays; negative
	// means unlimited.
	MaxRays int
	// Token, when non-nil, is polled during conversions: once it is
	// exhausted remaining constraints are dropped (again a sound
	// over-approximation), so long-running operations wind down quickly.
	Token *budget.Token
	// PureBig forces every vector onto the exact big.Int tier and
	// disables demotion. The differential tests use it to build a
	// reference kernel; it must never be set in production code.
	PureBig bool
	// Arena, when non-nil, recycles machine-tier coefficient vectors and
	// saturation bitsets across the run: the Chernikova conversion frees
	// provably dead rows (replaced generators, dropped duplicates,
	// released gensets) back to it instead of leaving them to the
	// garbage collector. Arenas are not safe for concurrent use; the
	// driver threads one per procedure.
	Arena *arena.Arena

	// dropped counts constraints dropped at the ray cap in this run.
	dropped atomic.Int64
}

// DroppedConstraints returns the number of constraints dropped at the ray
// cap under this Config. Budget-induced drops are not counted: they depend
// on wall-clock timing and would make reports nondeterministic.
func (c *Config) DroppedConstraints() int64 {
	if c == nil {
		return 0
	}
	return c.dropped.Load()
}

func (c *Config) maxRays() int {
	if c == nil || c.MaxRays == 0 {
		return DefaultMaxRays
	}
	if c.MaxRays < 0 {
		return 0 // unlimited
	}
	return c.MaxRays
}

func (c *Config) pure() bool { return c != nil && c.PureBig }

func (c *Config) ar() *arena.Arena {
	if c == nil {
		return nil
	}
	return c.Arena
}

func (c *Config) token() *budget.Token {
	if c == nil {
		return nil
	}
	return c.Token
}

func (c *Config) noteDropped(n int) {
	if c != nil && n > 0 {
		c.dropped.Add(int64(n))
	}
}

// Universe returns the unconstrained polyhedron over n variables,
// governed by c.
func (c *Config) Universe(n int) *Poly {
	return &Poly{n: n, cons: []row{}, cfg: c}
}

// Bottom returns the empty polyhedron over n variables, governed by c.
func (c *Config) Bottom(n int) *Poly {
	return &Poly{n: n, empty: true, cfg: c}
}

// FromSystem returns the polyhedron of the conjunction sys over n
// variables, governed by c.
func (c *Config) FromSystem(sys linear.System, n int) *Poly {
	return c.Universe(n).MeetSystem(sys)
}
