// Package polyhedra implements the convex-polyhedra abstract domain of
// Cousot and Halbwachs [6,17] using the double-description (Chernikova)
// method with exact big.Int arithmetic. It is the Go substitute for the
// New Polka library the paper's prototype used [19].
//
// A polyhedron over n integer variables is represented by its homogenized
// cone in R^(n+1): coordinate 0 is the homogenizing coordinate d, and
// coordinates 1..n are the variables. A constraint row c means
// c[0]*d + c[1]*x1 + ... + c[n]*xn >= 0 (or == 0); a point x of the
// polyhedron corresponds to the ray (1, x). Both the constraint and the
// generator representation are maintained lazily, each derived from the
// other by the same conversion algorithm applied in the dual.
package polyhedra

import "math/big"

type vec []*big.Int

func newVec(n int) vec {
	v := make(vec, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

func (v vec) clone() vec {
	c := make(vec, len(v))
	for i := range v {
		c[i] = new(big.Int).Set(v[i])
	}
	return c
}

func (v vec) neg() vec {
	c := make(vec, len(v))
	for i := range v {
		c[i] = new(big.Int).Neg(v[i])
	}
	return c
}

func dot(a, b vec) *big.Int {
	s := new(big.Int)
	t := new(big.Int)
	for i := range a {
		// Rows and generators are sparse; skipping zero factors avoids
		// most big.Int work.
		if a[i].Sign() == 0 || b[i].Sign() == 0 {
			continue
		}
		t.Mul(a[i], b[i])
		s.Add(s, t)
	}
	return s
}

// normalize divides v by the gcd of its entries (leaving sign intact).
func (v vec) normalize() {
	g := new(big.Int)
	for i := range v {
		if v[i].Sign() != 0 {
			g.GCD(nil, nil, g.Abs(g), new(big.Int).Abs(v[i]))
		}
	}
	if g.Sign() == 0 || g.Cmp(bigOne) == 0 {
		return
	}
	for i := range v {
		v[i].Quo(v[i], g)
	}
}

// combine returns ka*a + kb*b, normalized.
func combine(ka *big.Int, a vec, kb *big.Int, b vec) vec {
	r := make(vec, len(a))
	t := new(big.Int)
	for i := range a {
		az, bz := a[i].Sign() == 0, b[i].Sign() == 0
		switch {
		case az && bz:
			r[i] = new(big.Int)
		case bz:
			r[i] = new(big.Int).Mul(ka, a[i])
		case az:
			r[i] = new(big.Int).Mul(kb, b[i])
		default:
			r[i] = new(big.Int).Mul(ka, a[i])
			t.Mul(kb, b[i])
			r[i].Add(r[i], t)
		}
	}
	r.normalize()
	return r
}

func (v vec) isZero() bool {
	for i := range v {
		if v[i].Sign() != 0 {
			return false
		}
	}
	return true
}

func (v vec) equal(w vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Sign() != w[i].Sign() {
			return false
		}
	}
	for i := range v {
		if v[i].Cmp(w[i]) != 0 {
			return false
		}
	}
	return true
}

var (
	bigOne = big.NewInt(1)
)

// bitset is a growable bit vector used for constraint-saturation tracking.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

func (b *bitset) set(i int) {
	for len(*b) <= i/64 {
		*b = append(*b, 0)
	}
	(*b)[i/64] |= 1 << uint(i%64)
}

func (b bitset) get(i int) bool {
	if i/64 >= len(b) {
		return false
	}
	return b[i/64]&(1<<uint(i%64)) != 0
}

// and returns the intersection of b and c.
func (b bitset) and(c bitset) bitset {
	n := len(b)
	if len(c) < n {
		n = len(c)
	}
	r := make(bitset, n)
	for i := 0; i < n; i++ {
		r[i] = b[i] & c[i]
	}
	return r
}

// subsetOf reports whether every bit of b is set in c.
func (b bitset) subsetOf(c bitset) bool {
	for i := range b {
		var ci uint64
		if i < len(c) {
			ci = c[i]
		}
		if b[i]&^ci != 0 {
			return false
		}
	}
	return true
}

func (b bitset) equalUpTo(c bitset, n int) bool {
	for i := 0; i < n; i++ {
		if b.get(i) != c.get(i) {
			return false
		}
	}
	return true
}
