// Package polyhedra implements the convex-polyhedra abstract domain of
// Cousot and Halbwachs [6,17] using the double-description (Chernikova)
// method with exact arithmetic. It is the Go substitute for the New Polka
// library the paper's prototype used [19].
//
// A polyhedron over n integer variables is represented by its homogenized
// cone in R^(n+1): coordinate 0 is the homogenizing coordinate d, and
// coordinates 1..n are the variables. A constraint row c means
// c[0]*d + c[1]*x1 + ... + c[n]*xn >= 0 (or == 0); a point x of the
// polyhedron corresponds to the ray (1, x). Both the constraint and the
// generator representation are maintained lazily, each derived from the
// other by the same conversion algorithm applied in the dual.
//
// Arithmetic is exact but two-tiered, the trick New Polka itself uses:
// coefficient vectors live on a machine-word (int64) tier with
// overflow-checked operations, and promote — per row, not per polyhedron —
// to big.Int exactly when an operation would overflow. Promotion preserves
// values bit-for-bit, and normalization demotes exact-tier rows whose
// entries fit a machine word again, so results are identical to a pure
// big.Int kernel (enforced by the differential tests in ops_test.go).
package polyhedra

import (
	"math"
	"math/big"
	"sync"

	"repro/internal/arena"
	"repro/internal/numkernel"
)

// vec is a hybrid coefficient vector. Exactly one tier is active: the
// machine tier w (when xs == nil) or the exact tier xs. pure marks
// vectors of the reference kernel (Config.PureBig): they live on the
// exact tier and are never demoted. The flag is per-vector rather than a
// package global so concurrent analyses with different configurations
// cannot interfere.
type vec struct {
	w    []int64
	xs   []*big.Int
	pure bool
}

func newVec(n int, pure bool) vec {
	if pure {
		xs := make([]*big.Int, n)
		for i := range xs {
			xs[i] = new(big.Int)
		}
		return vec{xs: xs, pure: true}
	}
	return vec{w: make([]int64, n)}
}

// newVecAr is newVec with the machine-tier backing drawn from the arena;
// pure (exact-tier) vectors never touch the arena.
func newVecAr(ar *arena.Arena, n int, pure bool) vec {
	if pure {
		return newVec(n, pure)
	}
	return vec{w: ar.Int64s(n)}
}

func (v vec) dim() int {
	if v.xs != nil {
		return len(v.xs)
	}
	return len(v.w)
}

func (v vec) isBig() bool { return v.xs != nil }

// promoted returns an exact-tier vector with the same values. Machine-tier
// input yields fresh, independent storage; exact-tier input is returned
// as-is (shared).
func (v vec) promoted() vec {
	if v.xs != nil {
		return v
	}
	xs := make([]*big.Int, len(v.w))
	for i, x := range v.w {
		xs[i] = big.NewInt(x)
	}
	return vec{xs: xs}
}

// demoted moves v back to the machine tier when every entry fits an int64;
// otherwise (or for reference-kernel vectors) v is returned unchanged.
func (v vec) demoted() vec {
	if v.xs == nil || v.pure {
		return v
	}
	for _, x := range v.xs {
		if !x.IsInt64() {
			return v
		}
	}
	w := make([]int64, len(v.xs))
	for i, x := range v.xs {
		w[i] = x.Int64()
	}
	return vec{w: w}
}

func (v vec) clone() vec {
	if v.xs != nil {
		c := make([]*big.Int, len(v.xs))
		for i := range v.xs {
			c[i] = new(big.Int).Set(v.xs[i])
		}
		return vec{xs: c, pure: v.pure}
	}
	return vec{w: append([]int64(nil), v.w...)}
}

// cloneAr is clone with the machine-tier backing drawn from the arena.
func (v vec) cloneAr(ar *arena.Arena) vec {
	if v.xs != nil {
		return v.clone()
	}
	w := ar.Int64s(len(v.w))
	copy(w, v.w)
	return vec{w: w}
}

// release returns a machine-tier vector's backing store to the arena.
// The caller asserts the vector is dead: no live row, generator, or
// genset references it.
func (v vec) release(ar *arena.Arena) {
	if v.xs == nil {
		ar.PutInt64s(v.w)
	}
}

func (v vec) sign(i int) int {
	if v.xs != nil {
		return v.xs[i].Sign()
	}
	switch {
	case v.w[i] > 0:
		return 1
	case v.w[i] < 0:
		return -1
	}
	return 0
}

// setInt64 stores x at index i (both tiers hold any int64).
func (v vec) setInt64(i int, x int64) {
	if v.xs != nil {
		v.xs[i].SetInt64(x)
		return
	}
	v.w[i] = x
}

// setBig stores x at index i, promoting the vector when x does not fit the
// machine tier.
func (v *vec) setBig(i int, x *big.Int) {
	if v.xs == nil {
		if x.IsInt64() {
			v.w[i] = x.Int64()
			return
		}
		*v = v.promoted()
	}
	v.xs[i].Set(x)
}

// setScalar stores s at index i, promoting the vector when s is on the
// exact tier and does not fit a machine word.
func (v *vec) setScalar(i int, s scalar) {
	if s.b != nil {
		v.setBig(i, s.b)
		return
	}
	v.setInt64(i, s.w)
}

// bigAt returns the exact value at index i; machine-tier reads allocate.
// Callers must treat the result as read-only.
func (v vec) bigAt(i int) *big.Int {
	if v.xs != nil {
		return v.xs[i]
	}
	return big.NewInt(v.w[i])
}

// bigRef is bigAt without allocation: machine-tier reads are materialized
// into tmp.
func (v vec) bigRef(i int, tmp *big.Int) *big.Int {
	if v.xs != nil {
		return v.xs[i]
	}
	return tmp.SetInt64(v.w[i])
}

func (v vec) neg() vec {
	if v.xs == nil {
		c := make([]int64, len(v.w))
		for i, x := range v.w {
			if x == math.MinInt64 {
				return v.promoted().neg()
			}
			c[i] = -x
		}
		return vec{w: c}
	}
	c := make([]*big.Int, len(v.xs))
	for i := range v.xs {
		c[i] = new(big.Int).Neg(v.xs[i])
	}
	return vec{xs: c, pure: v.pure}
}

func (v vec) isZero() bool {
	if v.xs == nil {
		for _, x := range v.w {
			if x != 0 {
				return false
			}
		}
		return true
	}
	for _, x := range v.xs {
		if x.Sign() != 0 {
			return false
		}
	}
	return true
}

// appendKey appends the canonical value-based encoding of every entry to
// key. Equal vectors encode equally regardless of tier.
func (v vec) appendKey(key []byte) []byte {
	if v.xs == nil {
		for _, x := range v.w {
			key = numkernel.AppendKeyInt64(key, x)
		}
		return key
	}
	for _, x := range v.xs {
		key = numkernel.AppendKeyBig(key, x)
	}
	return key
}

// scalar is a hybrid integer: the machine value w when b == nil, the exact
// value b otherwise.
type scalar struct {
	w int64
	b *big.Int
}

func (s scalar) sign() int {
	if s.b != nil {
		return s.b.Sign()
	}
	switch {
	case s.w > 0:
		return 1
	case s.w < 0:
		return -1
	}
	return 0
}

func (s scalar) neg() scalar {
	if s.b == nil {
		if n, ok := numkernel.NegOK(s.w); ok {
			return scalar{w: n}
		}
		return scalar{b: new(big.Int).Neg(big.NewInt(s.w))}
	}
	return scalar{b: new(big.Int).Neg(s.b)}
}

// bigRef materializes the scalar into tmp when it is on the machine tier.
func (s scalar) bigRef(tmp *big.Int) *big.Int {
	if s.b != nil {
		return s.b
	}
	return tmp.SetInt64(s.w)
}

// dot returns the inner product of a and b, promoting to the exact tier on
// overflow.
func dot(a, b vec) scalar {
	if a.xs == nil && b.xs == nil {
		var acc int64
		for i, x := range a.w {
			y := b.w[i]
			if x == 0 || y == 0 {
				continue
			}
			p, ok := numkernel.MulOK(x, y)
			if !ok {
				return scalar{b: dotBig(a, b)}
			}
			if acc, ok = numkernel.AddOK(acc, p); !ok {
				return scalar{b: dotBig(a, b)}
			}
		}
		return scalar{w: acc}
	}
	return scalar{b: dotBig(a, b)}
}

// dotBig is the exact-tier inner product; per-element temporaries come from
// the pooled scratch space.
func dotBig(a, b vec) *big.Int {
	sc := getScratch()
	defer putScratch(sc)
	t, ta, tb := sc.t[0], sc.t[1], sc.t[2]
	s := new(big.Int)
	n := a.dim()
	for i := 0; i < n; i++ {
		// Rows and generators are sparse; skipping zero factors avoids
		// most of the work.
		if a.sign(i) == 0 || b.sign(i) == 0 {
			continue
		}
		t.Mul(a.bigRef(i, ta), b.bigRef(i, tb))
		s.Add(s, t)
	}
	return s
}

// normalize divides v by the gcd of its entries (leaving sign intact) and
// returns the canonical-tier result: exact-tier rows whose entries all fit
// a machine word are demoted, so equal rows always land on the same tier.
func (v vec) normalize() vec {
	if v.xs == nil {
		var g uint64
		for _, x := range v.w {
			if x != 0 {
				g = numkernel.Gcd64(g, numkernel.AbsU64(x))
				if g == 1 {
					return v
				}
			}
		}
		if g == 0 {
			return v
		}
		if g > math.MaxInt64 {
			// Every nonzero entry is MinInt64 (|MinInt64| = 2^63): the
			// quotient is -1.
			for i := range v.w {
				if v.w[i] != 0 {
					v.w[i] = -1
				}
			}
			return v
		}
		d := int64(g)
		for i := range v.w {
			v.w[i] /= d
		}
		return v
	}
	sc := getScratch()
	g, t := sc.t[0], sc.t[1]
	g.SetInt64(0)
	for i := range v.xs {
		if v.xs[i].Sign() != 0 {
			g.GCD(nil, nil, g.Abs(g), t.Abs(v.xs[i]))
		}
	}
	if g.Sign() != 0 && g.Cmp(bigOne) != 0 {
		for i := range v.xs {
			v.xs[i].Quo(v.xs[i], g)
		}
	}
	putScratch(sc)
	return v.demoted()
}

// combine returns ka*a + kb*b, normalized. The machine-tier result is
// drawn from the arena; on overflow the partial result is returned to it
// and the combination replays on the exact tier.
func combine(ar *arena.Arena, ka scalar, a vec, kb scalar, b vec) vec {
	if ka.b == nil && kb.b == nil && a.xs == nil && b.xs == nil {
		r := ar.Int64sUninit(len(a.w)) // every entry is written before any read
		ok := true
		for i, av := range a.w {
			bv := b.w[i]
			var x, y int64
			if av != 0 {
				if x, ok = numkernel.MulOK(ka.w, av); !ok {
					break
				}
			}
			if bv != 0 {
				if y, ok = numkernel.MulOK(kb.w, bv); !ok {
					break
				}
			}
			if r[i], ok = numkernel.AddOK(x, y); !ok {
				break
			}
		}
		if ok {
			return vec{w: r}.normalize()
		}
		ar.PutInt64s(r)
	}
	return combineBig(ka, a, kb, b)
}

// combineBig is the exact-tier linear combination.
func combineBig(ka scalar, a vec, kb scalar, b vec) vec {
	sc := getScratch()
	bka := ka.bigRef(sc.t[0])
	bkb := kb.bigRef(sc.t[1])
	t, tv := sc.t[2], sc.t[3]
	n := a.dim()
	r := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		az, bz := a.sign(i) == 0, b.sign(i) == 0
		switch {
		case az && bz:
			r[i] = new(big.Int)
		case bz:
			r[i] = new(big.Int).Mul(bka, a.bigRef(i, tv))
		case az:
			r[i] = new(big.Int).Mul(bkb, b.bigRef(i, tv))
		default:
			r[i] = new(big.Int).Mul(bka, a.bigRef(i, tv))
			t.Mul(bkb, b.bigRef(i, tv))
			r[i].Add(r[i], t)
		}
	}
	putScratch(sc)
	return vec{xs: r, pure: a.pure || b.pure}.normalize()
}

var (
	bigOne = big.NewInt(1)
)

// scratch is pooled working storage for the exact-tier paths and the dedup
// key builders, so the hot loops allocate only their results.
type scratch struct {
	t   [4]*big.Int
	key []byte
}

var scratchPool = sync.Pool{New: func() any {
	s := &scratch{}
	for i := range s.t {
		s.t[i] = new(big.Int)
	}
	return s
}}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(s *scratch) {
	s.key = s.key[:0]
	scratchPool.Put(s)
}

// bitset is a growable bit vector used for constraint-saturation tracking.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// newBitsetAr is newBitset with the backing drawn from the arena.
func newBitsetAr(ar *arena.Arena, n int) bitset { return bitset(ar.Uint64s((n + 63) / 64)) }

// release returns the bitset's backing store to the arena; the caller
// asserts no live ray references it.
func (b bitset) release(ar *arena.Arena) { ar.PutUint64s(b) }

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

func (b *bitset) set(i int) {
	for len(*b) <= i/64 {
		*b = append(*b, 0)
	}
	(*b)[i/64] |= 1 << uint(i%64)
}

func (b bitset) get(i int) bool {
	if i/64 >= len(b) {
		return false
	}
	return b[i/64]&(1<<uint(i%64)) != 0
}

// and returns the intersection of b and c, drawn from the arena.
func (b bitset) and(ar *arena.Arena, c bitset) bitset {
	n := len(b)
	if len(c) < n {
		n = len(c)
	}
	r := bitset(ar.Uint64sUninit(n)) // every word is written below
	for i := 0; i < n; i++ {
		r[i] = b[i] & c[i]
	}
	return r
}

// subsetOf reports whether every bit of b is set in c.
func (b bitset) subsetOf(c bitset) bool {
	for i := range b {
		var ci uint64
		if i < len(c) {
			ci = c[i]
		}
		if b[i]&^ci != 0 {
			return false
		}
	}
	return true
}

func (b bitset) equalUpTo(c bitset, n int) bool {
	for i := 0; i < n; i++ {
		if b.get(i) != c.get(i) {
			return false
		}
	}
	return true
}
