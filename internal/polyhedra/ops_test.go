package polyhedra

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

// TestRandomizedSubstitution: Substitute computes the exact weakest
// precondition of the assignment — pointwise: pt satisfies Subst(v, e, P)
// iff pt[v := e(pt)] satisfies P.
func TestRandomizedSubstitution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := allPoints(3)
	for trial := 0; trial < 120; trial++ {
		sys := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sys, 3)
		if p.IsEmpty() {
			continue
		}
		v := rng.Intn(3)
		e := linear.ConstExpr(rng.Int63n(5) - 2)
		for u := 0; u < 3; u++ {
			if rng.Intn(2) == 0 {
				e.AddTerm(u, rng.Int63n(5)-2)
			}
		}
		sub := p.Substitute(v, e)
		subSys := sub.System()
		for _, pt := range pts {
			bp := []*big.Int{big.NewInt(pt[0]), big.NewInt(pt[1]), big.NewInt(pt[2])}
			img := pt
			img[v] = e.Eval(bp).Int64()
			want := satisfies(sys, img) // P holds after the assignment
			got := !sub.IsEmpty() && satisfies(subSys, pt)
			if want != got {
				t.Fatalf("trial %d: wp wrong at %v (image %v): want %v got %v\nP: %s\nwp: %s",
					trial, pt, img, want, got, sys.String(nil), subSys.String(nil))
			}
		}
	}
}

// TestRandomizedHavocSound: every point reachable by changing the havocked
// coordinate stays inside.
func TestRandomizedHavocSound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := allPoints(2)
	for trial := 0; trial < 100; trial++ {
		sys := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sys, 3)
		v := rng.Intn(3)
		h := p.Havoc(v)
		hSys := h.System()
		for _, pt := range pts {
			if !satisfies(sys, pt) {
				continue
			}
			for delta := int64(-3); delta <= 3; delta++ {
				img := pt
				img[v] += delta
				if h.IsEmpty() || !satisfies(hSys, img) {
					t.Fatalf("trial %d: havoc lost point %v", trial, img)
				}
			}
		}
	}
}

// TestWidenSimpleTerminates: chains of WidenSimple strictly shrink the
// constraint set, so a growing sequence stabilizes quickly.
func TestWidenSimpleTerminates(t *testing.T) {
	cur := FromSystem(linear.System{eq(0, 1, 0), eq(0, 1, 1), eq(0, 1, 2)}, 3)
	for step := int64(1); step < 100; step++ {
		next := FromSystem(linear.System{
			eq(-step, 1, 0), eq(-2*step, 1, 1), eq(0, 1, 2),
		}, 3)
		w := cur.WidenSimple(cur.Join(next))
		if w.Equal(cur) {
			// Stabilized; the stable constraint survives.
			if !w.Entails(eq(0, 1, 2)) {
				t.Errorf("stable equality lost: %s", w.String(nil))
			}
			return
		}
		cur = w
		if step > 10 {
			t.Fatalf("WidenSimple did not stabilize after %d steps: %s", step, cur.String(nil))
		}
	}
}

// TestBoundsQueries: boundedness detection across rays and lines.
func TestBoundsQueries(t *testing.T) {
	// x >= 2, no upper bound; y unconstrained (line); z in [1, 3].
	p := FromSystem(linear.System{
		ge(-2, 1, 0),
		ge(-1, 1, 2), ge(3, -1, 2),
	}, 3)
	lo, hi := p.Bounds(0)
	if lo == nil || lo.Cmp(big.NewRat(2, 1)) != 0 || hi != nil {
		t.Errorf("x bounds [%v, %v]", lo, hi)
	}
	lo, hi = p.Bounds(1)
	if lo != nil || hi != nil {
		t.Errorf("y should be unbounded: [%v, %v]", lo, hi)
	}
	lo, hi = p.Bounds(2)
	if lo == nil || hi == nil || lo.Cmp(big.NewRat(1, 1)) != 0 || hi.Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("z bounds [%v, %v]", lo, hi)
	}
}

// TestNumConstraintsMinimal: redundant inputs minimize.
func TestNumConstraintsMinimal(t *testing.T) {
	p := FromSystem(linear.System{
		ge(0, 1, 0), ge(1, 1, 0), ge(2, 1, 0), // x >= 0 subsumes the rest
	}, 1)
	p.System() // force minimization
	if n := p.NumConstraints(); n != 1 {
		t.Errorf("minimized to %d constraints, want 1", n)
	}
}
