package polyhedra

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/linear"
)

// ---------------------------------------------------------------------------
// Differential testing of the hybrid kernel against a pure-big.Int build.
// The reference kernel is selected per run via Config.PureBig, so the two
// scripts can even run concurrently without interfering.

// hybridCoef maps a fuzz byte to a coefficient. Most values are small (the
// common case the machine tier serves); the top values are huge, forcing
// per-row promotion in dot products, combinations and normalization.
func hybridCoef(b byte) int64 {
	switch b % 16 {
	case 15:
		return 1 << 62
	case 14:
		return -(1 << 62)
	case 13:
		return 3037000500 // ~sqrt(MaxInt64); products of two overflow
	default:
		return int64(b%16) - 6
	}
}

// runHybridScript interprets data as a small program over the kernel ops
// (Meet/Join/Widen/Assign/Havoc/Includes/Entails/Bounds) and returns the
// observable transcript. The transcript must be identical whichever tier
// the kernel picks internally; cfg selects the kernel (nil = hybrid,
// PureBig = exact reference).
func runHybridScript(data []byte, cfg *Config) []string {
	const dim = 3
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	constraint := func() linear.Constraint {
		e := linear.ConstExpr(hybridCoef(next()))
		for v := 0; v < dim; v++ {
			if next()%2 == 0 {
				e.AddTerm(v, hybridCoef(next()))
			}
		}
		if next()%4 == 0 {
			return linear.NewEq(e)
		}
		return linear.NewGe(e)
	}
	system := func() linear.System {
		n := 1 + int(next()%3)
		var sys linear.System
		for i := 0; i < n; i++ {
			sys = append(sys, constraint())
		}
		return sys
	}
	cur := cfg.Universe(dim)
	var trace []string
	emit := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	for step := 0; step < 16 && pos < len(data); step++ {
		switch next() % 7 {
		case 0:
			cur = cur.MeetSystem(system())
		case 1:
			cur = cur.Join(cfg.FromSystem(system(), dim))
		case 2:
			cur = cur.Widen(cur.Join(cfg.FromSystem(system(), dim)))
		case 3:
			e := linear.ConstExpr(hybridCoef(next()))
			for v := 0; v < dim; v++ {
				if next()%2 == 0 {
					e.AddTerm(v, hybridCoef(next()))
				}
			}
			cur = cur.Assign(int(next())%dim, e)
		case 4:
			cur = cur.Havoc(int(next()) % dim)
		case 5:
			q := cfg.FromSystem(system(), dim)
			emit("includes=%v reverse=%v", cur.Includes(q), q.Includes(cur))
		case 6:
			c := constraint()
			v := int(next()) % dim
			lo, hi := cur.Bounds(v)
			emit("entails=%v bounds(%d)=[%v,%v]", cur.Entails(c), v, lo, hi)
		}
		emit("state=%s empty=%v n=%d", cur.System().String(nil), cur.IsEmpty(), cur.NumConstraints())
	}
	return trace
}

// diffHybrid runs the script on the hybrid kernel — with and without an
// arena — and on the pure-big.Int reference, failing on the first
// transcript mismatch. The arena run is the aliasing oracle: a released
// vector that is still reachable gets recycled into a later polyhedron and
// diverges from the reference.
func diffHybrid(t *testing.T, data []byte) {
	t.Helper()
	want := runHybridScript(data, &Config{PureBig: true})
	for _, kernel := range []struct {
		name string
		cfg  *Config
	}{
		{"hybrid", nil},
		{"arena", &Config{Arena: arena.New()}},
	} {
		got := runHybridScript(data, kernel.cfg)
		if len(got) != len(want) {
			t.Fatalf("%s: transcript lengths differ: %d vs reference %d", kernel.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: transcripts diverge at step %d:\n%s:    %s\nreference: %s",
					kernel.name, i, kernel.name, got[i], want[i])
			}
		}
	}
}

// FuzzHybridOps: randomized op sequences must be bit-identical between the
// hybrid kernel and the pure-big.Int reference.
func FuzzHybridOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{13, 13, 13, 14, 14, 15, 15, 15, 13, 14, 15, 0, 1, 5, 6})
	f.Add([]byte{5, 255, 254, 253, 3, 250, 249, 248, 5, 247, 6, 246, 245})
	f.Add([]byte{2, 15, 1, 15, 2, 15, 1, 15, 2, 15, 5, 15, 6, 15})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8; i++ {
		seed := make([]byte, 8+rng.Intn(40))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffHybrid(t, data)
	})
}

// TestHybridDifferentialRandom is the deterministic always-on slice of the
// fuzz target, with coefficient patterns chosen to exercise promotion.
func TestHybridDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		data := make([]byte, 10+rng.Intn(50))
		rng.Read(data)
		diffHybrid(t, data)
	}
}

// TestHybridPromotionOccurs: with huge coefficients the hybrid kernel must
// actually leave the machine tier (guarding against a silently-dead big
// path) and still normalize correctly.
func TestHybridPromotionOccurs(t *testing.T) {
	huge := int64(3037000500)
	e := linear.ConstExpr(0)
	e.AddTerm(0, huge)
	p := FromSystem(linear.System{linear.NewGe(e)}, 1) // huge*x >= 0
	q := p.Assign(0, scaleExpr(huge))                  // x := huge*x, bound becomes huge^2*x >= 0 pre-normalize
	if q.IsEmpty() {
		t.Fatal("assign emptied the polyhedron")
	}
	// x >= 0 must still be entailed (normalization divides the huge gcd).
	if !q.Entails(ge(0, 1, 0)) {
		t.Errorf("x >= 0 lost after promoted assign: %s", q.String(nil))
	}
}

func scaleExpr(k int64) linear.Expr {
	e := linear.ConstExpr(0)
	e.AddTerm(0, k)
	return e
}

// TestMaxRaysCapCounted: lowering the ray cap forces conversions to drop
// constraints, and every drop is visible through the run's
// Config.DroppedConstraints.
func TestMaxRaysCapCounted(t *testing.T) {
	cfg := &Config{MaxRays: 1}
	// A 3-cube: once the lines are consumed, each further face splits the
	// ray set and the combination count exceeds the cap of 1.
	cube := linear.System{
		ge(0, 1, 0), ge(5, -1, 0),
		ge(0, 1, 1), ge(5, -1, 1),
		ge(0, 1, 2), ge(5, -1, 2),
	}
	p := cfg.FromSystem(cube, 3)
	if p.IsEmpty() {
		t.Fatal("cube should not be empty")
	}
	if cfg.DroppedConstraints() == 0 {
		t.Fatal("expected the MaxRays=1 cap to drop constraints")
	}
	// Dropping constraints only grows the set: the capped polyhedron must
	// still include the exact cube (computed under the default cap).
	exact := FromSystem(cube, 3)
	if !p.Includes(exact) {
		t.Error("capped conversion is not an over-approximation")
	}
}

// TestRandomizedSubstitution: Substitute computes the exact weakest
// precondition of the assignment — pointwise: pt satisfies Subst(v, e, P)
// iff pt[v := e(pt)] satisfies P.
func TestRandomizedSubstitution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := allPoints(3)
	for trial := 0; trial < 120; trial++ {
		sys := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sys, 3)
		if p.IsEmpty() {
			continue
		}
		v := rng.Intn(3)
		e := linear.ConstExpr(rng.Int63n(5) - 2)
		for u := 0; u < 3; u++ {
			if rng.Intn(2) == 0 {
				e.AddTerm(u, rng.Int63n(5)-2)
			}
		}
		sub := p.Substitute(v, e)
		subSys := sub.System()
		for _, pt := range pts {
			bp := []*big.Int{big.NewInt(pt[0]), big.NewInt(pt[1]), big.NewInt(pt[2])}
			img := pt
			img[v] = e.Eval(bp).Int64()
			want := satisfies(sys, img) // P holds after the assignment
			got := !sub.IsEmpty() && satisfies(subSys, pt)
			if want != got {
				t.Fatalf("trial %d: wp wrong at %v (image %v): want %v got %v\nP: %s\nwp: %s",
					trial, pt, img, want, got, sys.String(nil), subSys.String(nil))
			}
		}
	}
}

// TestRandomizedHavocSound: every point reachable by changing the havocked
// coordinate stays inside.
func TestRandomizedHavocSound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := allPoints(2)
	for trial := 0; trial < 100; trial++ {
		sys := randSystem(rng, 1+rng.Intn(3))
		p := FromSystem(sys, 3)
		v := rng.Intn(3)
		h := p.Havoc(v)
		hSys := h.System()
		for _, pt := range pts {
			if !satisfies(sys, pt) {
				continue
			}
			for delta := int64(-3); delta <= 3; delta++ {
				img := pt
				img[v] += delta
				if h.IsEmpty() || !satisfies(hSys, img) {
					t.Fatalf("trial %d: havoc lost point %v", trial, img)
				}
			}
		}
	}
}

// TestWidenSimpleTerminates: chains of WidenSimple strictly shrink the
// constraint set, so a growing sequence stabilizes quickly.
func TestWidenSimpleTerminates(t *testing.T) {
	cur := FromSystem(linear.System{eq(0, 1, 0), eq(0, 1, 1), eq(0, 1, 2)}, 3)
	for step := int64(1); step < 100; step++ {
		next := FromSystem(linear.System{
			eq(-step, 1, 0), eq(-2*step, 1, 1), eq(0, 1, 2),
		}, 3)
		w := cur.WidenSimple(cur.Join(next))
		if w.Equal(cur) {
			// Stabilized; the stable constraint survives.
			if !w.Entails(eq(0, 1, 2)) {
				t.Errorf("stable equality lost: %s", w.String(nil))
			}
			return
		}
		cur = w
		if step > 10 {
			t.Fatalf("WidenSimple did not stabilize after %d steps: %s", step, cur.String(nil))
		}
	}
}

// TestBoundsQueries: boundedness detection across rays and lines.
func TestBoundsQueries(t *testing.T) {
	// x >= 2, no upper bound; y unconstrained (line); z in [1, 3].
	p := FromSystem(linear.System{
		ge(-2, 1, 0),
		ge(-1, 1, 2), ge(3, -1, 2),
	}, 3)
	lo, hi := p.Bounds(0)
	if lo == nil || lo.Cmp(big.NewRat(2, 1)) != 0 || hi != nil {
		t.Errorf("x bounds [%v, %v]", lo, hi)
	}
	lo, hi = p.Bounds(1)
	if lo != nil || hi != nil {
		t.Errorf("y should be unbounded: [%v, %v]", lo, hi)
	}
	lo, hi = p.Bounds(2)
	if lo == nil || hi == nil || lo.Cmp(big.NewRat(1, 1)) != 0 || hi.Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("z bounds [%v, %v]", lo, hi)
	}
}

// TestNumConstraintsMinimal: redundant inputs minimize.
func TestNumConstraintsMinimal(t *testing.T) {
	p := FromSystem(linear.System{
		ge(0, 1, 0), ge(1, 1, 0), ge(2, 1, 0), // x >= 0 subsumes the rest
	}, 1)
	p.System() // force minimization
	if n := p.NumConstraints(); n != 1 {
		t.Errorf("minimized to %d constraints, want 1", n)
	}
}
