package polyhedra

import (
	"math/big"
	"strings"

	"repro/internal/arena"
	"repro/internal/linear"
	"repro/internal/numkernel"
)

// DefaultMaxRays caps intermediate generator counts during conversion;
// exceeding it drops constraints (a sound over-approximation). Per-run
// overrides go through Config.MaxRays.
const DefaultMaxRays = 100000

// Poly is a convex polyhedron over n integer-valued variables. The zero
// value is not meaningful; use Universe, Bottom or FromSystem.
//
// Both representations are maintained lazily: cons from gens and gens from
// cons via Chernikova conversion. All operations are sound
// over-approximations of their concrete counterparts.
type Poly struct {
	n     int
	empty bool
	cons  []row   // nil when unknown
	gens  *genset // nil when unknown
	// minimized records that cons came from a dual conversion (and is
	// therefore irredundant).
	minimized bool
	// cfg carries per-run knobs (ray cap, budget token, kernel tier);
	// nil means defaults. Operations propagate it to their results.
	cfg *Config
}

// Universe returns the unconstrained polyhedron over n variables with
// default configuration.
func Universe(n int) *Poly {
	return (*Config)(nil).Universe(n)
}

// Bottom returns the empty polyhedron over n variables with default
// configuration.
func Bottom(n int) *Poly {
	return (*Config)(nil).Bottom(n)
}

// cfgOr returns the receiver's Config, falling back to q's when unset, so
// binary operations preserve governance even when one operand carries the
// default configuration.
func (p *Poly) cfgOr(q *Poly) *Config {
	if p.cfg != nil {
		return p.cfg
	}
	return q.cfg
}

// Dim returns the number of variables.
func (p *Poly) Dim() int { return p.n }

// rowOf converts a linear.Constraint to a dense row governed by cfg.
func rowOf(c linear.Constraint, n int, cfg *Config) row {
	v := newVecAr(cfg.ar(), n+1, cfg.pure())
	v.setBig(0, c.E.Const)
	for _, i := range c.E.Vars() {
		if i < n {
			v.setBig(i+1, c.E.Coef(i))
		}
	}
	return row{v: v, eq: c.Rel == linear.Eq}
}

// rowToConstraint converts a dense row back to a linear.Constraint.
func rowToConstraint(r row, n int) linear.Constraint {
	e := linear.NewExpr()
	e.Const.Set(r.v.bigAt(0))
	for i := 1; i <= n; i++ {
		if r.v.sign(i) != 0 {
			e.SetCoef(i-1, r.v.bigAt(i))
		}
	}
	rel := linear.Ge
	if r.eq {
		rel = linear.Eq
	}
	return linear.Constraint{E: e, Rel: rel}
}

// FromSystem returns the polyhedron of the conjunction sys over n
// variables with default configuration.
func FromSystem(sys linear.System, n int) *Poly {
	return (*Config)(nil).FromSystem(sys, n)
}

// ensureGens computes the generator representation.
func (p *Poly) ensureGens() {
	if p.empty || p.gens != nil {
		return
	}
	g, dropped := gensOf(p.cons, p.n, p.cfg)
	p.cfg.noteDropped(dropped)
	if !g.hasVertex() {
		p.empty = true
		// An empty polyhedron never consults either representation again;
		// both are dead.
		g.release(p.cfg.ar())
		for _, r := range p.cons {
			r.v.release(p.cfg.ar())
		}
		p.gens = nil
		p.cons = nil
		return
	}
	p.gens = g
}

// ensureCons computes the (minimized) constraint representation.
func (p *Poly) ensureCons() {
	if p.empty || p.cons != nil {
		return
	}
	p.cons = consOf(p.gens, p.n, p.cfg)
	p.minimized = true
}

// IsEmpty reports whether the polyhedron contains no points.
func (p *Poly) IsEmpty() bool {
	if p.empty {
		return true
	}
	p.ensureGens()
	return p.empty
}

// IsUniverse reports whether the polyhedron is unconstrained.
func (p *Poly) IsUniverse() bool {
	if p.IsEmpty() {
		return false
	}
	p.ensureCons()
	return len(p.cons) == 0
}

// Clone returns an independent copy.
func (p *Poly) Clone() *Poly {
	c := &Poly{n: p.n, empty: p.empty, minimized: p.minimized, cfg: p.cfg}
	if p.cons != nil {
		c.cons = make([]row, len(p.cons))
		for i, r := range p.cons {
			c.cons[i] = r.clone()
		}
	}
	if p.gens != nil {
		c.gens = p.gens.clone()
	}
	return c
}

// Key returns a canonical byte-string encoding of p's current constraint
// representation and whether one is available without further conversion
// work. Keys are value-based and tier-independent: equal keys imply the
// same constraint rows in the same order, hence the same polyhedron, so a
// cached answer keyed by it is exact. Two equal polyhedra with different
// representations may key differently — that only costs a cache miss.
func (p *Poly) Key() (string, bool) {
	if p.empty {
		return "empty", true
	}
	if p.cons == nil {
		return "", false
	}
	sc := getScratch()
	key := numkernel.AppendKeyInt64(sc.key[:0], int64(p.n))
	for _, r := range p.cons {
		b := byte(0)
		if r.eq {
			b = 1
		}
		key = append(key, b)
		key = r.v.appendKey(key)
		key = append(key, 0xff)
	}
	sc.key = key
	s := string(key)
	putScratch(sc)
	return s, true
}

// MeetSystem intersects p with the constraints of sys, returning a new
// polyhedron.
func (p *Poly) MeetSystem(sys linear.System) *Poly {
	if p.IsEmpty() {
		return p.cfg.Bottom(p.n)
	}
	for _, c := range sys {
		if c.IsContradiction() {
			return p.cfg.Bottom(p.n)
		}
	}
	out := &Poly{n: p.n, cfg: p.cfg}
	p.ensureCons()
	out.cons = make([]row, 0, len(p.cons)+len(sys))
	for _, r := range p.cons {
		out.cons = append(out.cons, r.clone())
	}
	for _, c := range sys {
		if c.IsTautology() {
			continue
		}
		out.cons = append(out.cons, rowOf(c, p.n, p.cfg))
	}
	return out
}

// Meet intersects two polyhedra.
func (p *Poly) Meet(q *Poly) *Poly {
	if p.IsEmpty() || q.IsEmpty() {
		return p.cfgOr(q).Bottom(p.n)
	}
	p.ensureCons()
	q.ensureCons()
	out := &Poly{n: p.n, cfg: p.cfgOr(q)}
	for _, r := range p.cons {
		out.cons = append(out.cons, r.clone())
	}
	for _, r := range q.cons {
		out.cons = append(out.cons, r.clone())
	}
	return out
}

// Join returns the convex hull of p and q (the domain's best
// over-approximation of union).
func (p *Poly) Join(q *Poly) *Poly {
	if p.IsEmpty() {
		return q.Clone()
	}
	if q.IsEmpty() {
		return p.Clone()
	}
	p.ensureGens()
	q.ensureGens()
	cfg := p.cfgOr(q)
	ar := cfg.ar()
	g := &genset{}
	for _, l := range p.gens.lines {
		g.lines = append(g.lines, l.cloneAr(ar))
	}
	for _, l := range q.gens.lines {
		g.lines = append(g.lines, l.cloneAr(ar))
	}
	for _, r := range p.gens.rays {
		g.rays = append(g.rays, r.cloneAr(ar))
	}
	for _, r := range q.gens.rays {
		g.rays = append(g.rays, r.cloneAr(ar))
	}
	out := &Poly{n: p.n, gens: g, cfg: cfg}
	// Minimize immediately through the dual so generator sets do not
	// accumulate across joins. The merged genset is only an input to that
	// conversion; afterwards it is dead.
	out.ensureCons()
	g.release(ar)
	out.gens = nil
	return out
}

// Includes reports whether q is contained in p.
func (p *Poly) Includes(q *Poly) bool {
	if q.IsEmpty() {
		return true
	}
	if p.IsEmpty() {
		return false
	}
	p.ensureCons()
	q.ensureGens()
	for _, r := range p.cons {
		if !rowHoldsGens(r, q.gens) {
			return false
		}
	}
	return true
}

func rowHoldsGens(r row, g *genset) bool {
	for _, l := range g.lines {
		if dot(r.v, l).sign() != 0 {
			return false
		}
	}
	for _, ray := range g.rays {
		d := dot(r.v, ray)
		if r.eq {
			if d.sign() != 0 {
				return false
			}
		} else if d.sign() < 0 {
			return false
		}
	}
	return true
}

// Equal reports whether p and q contain the same points.
func (p *Poly) Equal(q *Poly) bool {
	return p.Includes(q) && q.Includes(p)
}

// Entails reports whether every point of p satisfies c.
func (p *Poly) Entails(c linear.Constraint) bool {
	if p.IsEmpty() {
		return true
	}
	if c.IsTautology() {
		return true
	}
	p.ensureGens()
	r := rowOf(c, p.n, p.cfg)
	ok := rowHoldsGens(r, p.gens)
	r.v.release(p.cfg.ar())
	return ok
}

// EntailsAll reports whether p entails every constraint in sys.
func (p *Poly) EntailsAll(sys linear.System) bool {
	for _, c := range sys {
		if !p.Entails(c) {
			return false
		}
	}
	return true
}

// evalHom evaluates e homogeneously on generator g: e.Const*g[0] +
// Σ e.Coef(u)*g[u+1], on the machine tier when everything fits.
func evalHom(e linear.Expr, g vec) scalar {
	if g.xs == nil && e.Const.IsInt64() {
		acc, ok := numkernel.MulOK(e.Const.Int64(), g.w[0])
		if ok {
			for _, u := range e.Vars() {
				c := e.Coef(u)
				if !c.IsInt64() {
					ok = false
					break
				}
				var p int64
				if p, ok = numkernel.MulOK(c.Int64(), g.w[u+1]); !ok {
					break
				}
				if acc, ok = numkernel.AddOK(acc, p); !ok {
					break
				}
			}
			if ok {
				return scalar{w: acc}
			}
		}
	}
	sc := getScratch()
	defer putScratch(sc)
	t, tv := sc.t[0], sc.t[1]
	nv := new(big.Int).Mul(e.Const, g.bigRef(0, tv))
	for _, u := range e.Vars() {
		t.Mul(e.Coef(u), g.bigRef(u+1, tv))
		nv.Add(nv, t)
	}
	return scalar{b: nv}
}

// Assign over-approximates the transition v := e (a linear expression over
// the current values). It maps every generator through the corresponding
// homogeneous linear map.
func (p *Poly) Assign(v int, e linear.Expr) *Poly {
	if p.IsEmpty() {
		return p.cfg.Bottom(p.n)
	}
	p.ensureGens()
	ar := p.cfg.ar()
	mapped := &genset{}
	mapGen := func(g vec) vec {
		r := g.cloneAr(ar)
		// New value of coordinate v+1: e evaluated homogeneously.
		r.setScalar(v+1, evalHom(e, g))
		return r.normalize()
	}
	for _, l := range p.gens.lines {
		m := mapGen(l)
		if !m.isZero() {
			mapped.lines = append(mapped.lines, m)
		} else {
			m.release(ar)
		}
	}
	for _, r := range p.gens.rays {
		m := mapGen(r)
		if !m.isZero() {
			mapped.rays = append(mapped.rays, m)
		} else {
			m.release(ar)
		}
	}
	out := &Poly{n: p.n, gens: mapped, cfg: p.cfg}
	// Re-minimize through the dual; the mapped genset is dead afterwards.
	out.ensureCons()
	mapped.release(ar)
	out.gens = nil
	return out
}

// Havoc over-approximates v := unknown by making v unconstrained.
func (p *Poly) Havoc(v int) *Poly {
	if p.IsEmpty() {
		return p.cfg.Bottom(p.n)
	}
	p.ensureGens()
	ar := p.cfg.ar()
	g := p.gens.cloneAr(ar)
	l := newVecAr(ar, p.n+1, p.cfg.pure())
	l.setInt64(v+1, 1)
	g.lines = append(g.lines, l)
	out := &Poly{n: p.n, gens: g, cfg: p.cfg}
	out.ensureCons()
	g.release(ar)
	out.gens = nil
	return out
}

// Substitute replaces v by e in every constraint: the result is the weakest
// precondition of the assignment v := e with respect to p
// (wp(v := e, p) = p[e/v]).
func (p *Poly) Substitute(v int, e linear.Expr) *Poly {
	if p.IsEmpty() {
		return p.cfg.Bottom(p.n)
	}
	p.ensureCons()
	out := &Poly{n: p.n, cfg: p.cfg}
	for _, r := range p.cons {
		c := rowToConstraint(r, p.n)
		ne := c.E.Subst(v, e)
		out.cons = append(out.cons, rowOf(linear.Constraint{E: ne, Rel: c.Rel}, p.n, p.cfg))
	}
	return out
}

// Forget returns p with every constraint mentioning v dropped (used for
// universally quantified elimination in backward analysis). This differs
// from Havoc only in that it works directly on the minimized constraints.
func (p *Poly) Forget(v int) *Poly {
	if p.IsEmpty() {
		return p.cfg.Bottom(p.n)
	}
	p.ensureCons()
	out := &Poly{n: p.n, cfg: p.cfg}
	for _, r := range p.cons {
		if r.v.sign(v+1) == 0 {
			out.cons = append(out.cons, r.clone())
		}
	}
	return out
}

// System returns the minimized constraint system of p.
func (p *Poly) System() linear.System {
	if p.IsEmpty() {
		e := linear.ConstExpr(-1)
		return linear.System{linear.NewGe(e)} // -1 >= 0, unsatisfiable
	}
	p.ensureCons()
	if !p.minimized {
		p.ensureGens()
		if p.empty {
			return linear.System{linear.NewGe(linear.ConstExpr(-1))}
		}
		p.cons = consOf(p.gens, p.n, p.cfg)
		p.minimized = true
	}
	sys := make(linear.System, 0, len(p.cons))
	for _, r := range p.cons {
		sys = append(sys, rowToConstraint(r, p.n))
	}
	return sys
}

// SystemOver returns the constraints of p that mention only variables for
// which keep returns true, after havocking the others (a sound projection).
func (p *Poly) SystemOver(keep func(int) bool) linear.System {
	if p.IsEmpty() {
		return p.System()
	}
	q := p.Clone()
	for v := 0; v < p.n; v++ {
		if !keep(v) {
			q = q.Havoc(v)
		}
	}
	return q.System()
}

// SamplePoint returns a rational point inside p (a vertex), or nil if p is
// empty. The slice is indexed by variable.
func (p *Poly) SamplePoint() []*big.Rat {
	if p.IsEmpty() {
		return nil
	}
	p.ensureGens()
	for _, r := range p.gens.rays {
		if r.sign(0) > 0 {
			pt := make([]*big.Rat, p.n)
			for i := 1; i <= p.n; i++ {
				pt[i-1] = new(big.Rat).SetFrac(r.bigAt(i), r.bigAt(0))
			}
			return pt
		}
	}
	return nil
}

// Bounds returns the tightest [lo, hi] interval of variable v implied by p.
// Nil pointers denote unboundedness.
func (p *Poly) Bounds(v int) (lo, hi *big.Rat) {
	if p.IsEmpty() {
		return nil, nil
	}
	p.ensureGens()
	for _, l := range p.gens.lines {
		if l.sign(v+1) != 0 {
			return nil, nil
		}
	}
	unboundedUp, unboundedDown := false, false
	for _, r := range p.gens.rays {
		if r.sign(0) == 0 {
			if r.sign(v+1) > 0 {
				unboundedUp = true
			} else if r.sign(v+1) < 0 {
				unboundedDown = true
			}
		}
	}
	for _, r := range p.gens.rays {
		if r.sign(0) > 0 {
			val := new(big.Rat).SetFrac(r.bigAt(v+1), r.bigAt(0))
			if !unboundedDown && (lo == nil || val.Cmp(lo) < 0) {
				lo = val
			}
			if !unboundedUp && (hi == nil || val.Cmp(hi) > 0) {
				hi = val
			}
		}
	}
	return lo, hi
}

// Widen returns the CH78 widening of p (previous iterate) and q (next
// iterate): the constraints of p satisfied by q, plus constraints of q that
// saturate the same generators of p as some constraint of p does
// (Halbwachs' representation-stability refinement).
func (p *Poly) Widen(q *Poly) *Poly {
	if p.IsEmpty() {
		return q.Clone()
	}
	if q.IsEmpty() {
		return p.Clone()
	}
	p.ensureCons()
	p.ensureGens()
	q.ensureCons()

	out := &Poly{n: p.n, cfg: p.cfgOr(q)}
	kept := make([]row, 0, len(p.cons))
	for _, r := range p.cons {
		if rowHoldsGens(r, mustGens(q)) {
			kept = append(kept, r.clone())
		}
	}
	// Refinement: keep rows of q that are "mutually redundant" with a row
	// of p (same saturation signature on p's generators). This can delay
	// stabilization in rare cases; the engine escalates to WidenSimple when
	// a node refuses to stabilize.
	sigP := make([]string, len(p.cons))
	for i, r := range p.cons {
		sigP[i] = satSignature(r, p.gens)
	}
	for _, rq := range q.cons {
		if rowHoldsGens(rq, p.gens) {
			sq := satSignature(rq, p.gens)
			for _, sp := range sigP {
				if sq == sp {
					out.cons = append(out.cons, rq.clone())
					break
				}
			}
		}
	}
	out.cons = append(out.cons, kept...)
	out.cons = dedupRows(out.cfg.ar(), out.cons)
	return out
}

// WidenSimple is the unrefined CH78 widening: only the constraints of p
// satisfied by q survive. The result's constraint set is a subset of p's,
// so chains of WidenSimple are always finite.
func (p *Poly) WidenSimple(q *Poly) *Poly {
	if p.IsEmpty() {
		return q.Clone()
	}
	if q.IsEmpty() {
		return p.Clone()
	}
	p.ensureCons()
	out := &Poly{n: p.n, cfg: p.cfgOr(q)}
	for _, r := range p.cons {
		if rowHoldsGens(r, mustGens(q)) {
			out.cons = append(out.cons, r.clone())
		}
	}
	return out
}

func mustGens(p *Poly) *genset {
	p.ensureGens()
	return p.gens
}

// satSignature encodes which generators of g the row saturates.
func satSignature(r row, g *genset) string {
	var sb strings.Builder
	for _, l := range g.lines {
		if dot(r.v, l).sign() == 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte('|')
	for _, ray := range g.rays {
		if dot(r.v, ray).sign() == 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// dedupRows normalizes every row and drops duplicates, keyed by the
// canonical value encoding of the normalized row (the old implementation
// compared rows pairwise, quadratic in the system size). Dropped
// duplicates are released to the arena.
func dedupRows(ar *arena.Arena, rows []row) []row {
	out := rows[:0]
	seen := make(map[string]bool, len(rows))
	sc := getScratch()
	for i := range rows {
		rows[i].v = rows[i].v.normalize()
		key := sc.key[:0]
		if rows[i].eq {
			key = append(key, 1)
		} else {
			key = append(key, 0)
		}
		sc.key = rows[i].v.appendKey(key)
		// Lookup with an in-place converted key does not allocate; only the
		// insert of a fresh key does.
		if seen[string(sc.key)] {
			rows[i].v.release(ar)
			continue
		}
		seen[string(sc.key)] = true
		out = append(out, rows[i])
	}
	putScratch(sc)
	return out
}

// String renders the constraint system with the given variable space.
func (p *Poly) String(sp *linear.Space) string {
	if p.IsEmpty() {
		return "false"
	}
	p.ensureCons()
	if len(p.cons) == 0 {
		return "true"
	}
	return p.System().String(sp)
}

// NumConstraints returns the size of the minimized constraint system.
func (p *Poly) NumConstraints() int {
	if p.IsEmpty() {
		return 1
	}
	return len(p.System())
}
