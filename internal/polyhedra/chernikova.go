package polyhedra

import "repro/internal/budget"

// genset is the generator representation of a homogenized cone: lines
// (bidirectional) and rays. Rays with a positive coordinate 0 are vertices
// of the dehomogenized polyhedron (point = v[1..]/v[0]); rays with
// coordinate 0 zero are recession rays.
type genset struct {
	lines []vec
	rays  []vec
}

func (g *genset) clone() *genset {
	c := &genset{}
	for _, l := range g.lines {
		c.lines = append(c.lines, l.clone())
	}
	for _, r := range g.rays {
		c.rays = append(c.rays, r.clone())
	}
	return c
}

// hasVertex reports whether any ray has a positive homogenizing coordinate,
// i.e. the dehomogenized polyhedron is non-empty.
func (g *genset) hasVertex() bool {
	for _, r := range g.rays {
		if r.sign(0) > 0 {
			return true
		}
	}
	return false
}

// row is a constraint row: v[0] + v[1]*x1 + ... + v[n]*xn {>=, ==} 0.
type row struct {
	v  vec
	eq bool
}

func (r row) clone() row { return row{v: r.v.clone(), eq: r.eq} }

// satRay pairs a ray with the set of added constraints it saturates.
type satRay struct {
	v   vec
	sat bitset
}

// cone is the incremental double-description state used during
// constraint-to-generator conversion.
type cone struct {
	dim   int // vector length
	lines []vec
	rays  []satRay
	ncons int
	// maxRays caps intermediate ray counts; 0 means unlimited.
	maxRays int
	// dropped counts constraints skipped due to the cap (over-approximation).
	dropped int
	// pure forces new vectors onto the exact tier (reference kernel).
	pure bool
	// token, when non-nil, is polled before the combination step: an
	// exhausted budget drops the remaining constraints (sound
	// over-approximation, not counted in dropped — budget drops are
	// timing-dependent and must not surface in deterministic stats).
	token *budget.Token
}

// universePolyCone returns the cone of the universe polyhedron over n
// variables: lines e1..en and the positivity ray e0. The implicit
// positivity constraint d >= 0 is registered as constraint index 0 so that
// saturation-based adjacency tests account for it: the initial ray e0 does
// not saturate it, while every line (d = 0) does.
func universePolyCone(n, maxRays int, pure bool, token *budget.Token) *cone {
	c := &cone{dim: n + 1, maxRays: maxRays, ncons: 1, pure: pure, token: token}
	for i := 1; i <= n; i++ {
		l := newVec(n+1, pure)
		l.setInt64(i, 1)
		c.lines = append(c.lines, l)
	}
	r := newVec(n+1, pure)
	r.setInt64(0, 1)
	c.rays = append(c.rays, satRay{v: r, sat: newBitset(1)})
	return c
}

// universeCone returns the full-space cone in dimension m (m lines, no
// rays); used for the dual (generator-to-constraint) conversion.
func universeCone(m, maxRays int, pure bool) *cone {
	c := &cone{dim: m, maxRays: maxRays, pure: pure}
	for i := 0; i < m; i++ {
		l := newVec(m, pure)
		l.setInt64(i, 1)
		c.lines = append(c.lines, l)
	}
	return c
}

// satAllPrev returns a bitset with constraints 0..n-1 marked saturated.
func satAllPrev(n int) bitset {
	b := newBitset(n)
	for i := 0; i < n; i++ {
		b.set(i)
	}
	return b
}

// add incorporates the constraint r into the generator description
// (Chernikova's algorithm). It reports whether the constraint was applied
// (false when the ray cap forced it to be dropped, which over-approximates).
func (c *cone) add(r row) bool {
	idx := c.ncons
	c.ncons++

	// Case 1: some line is not orthogonal to the constraint. Use it to
	// shift every other generator onto the hyperplane.
	for i, l := range c.lines {
		p := dot(r.v, l)
		if p.sign() == 0 {
			continue
		}
		if p.sign() < 0 {
			l = l.neg()
			p = p.neg()
		}
		c.lines = append(c.lines[:i], c.lines[i+1:]...)
		for j, l2 := range c.lines {
			p2 := dot(r.v, l2)
			if p2.sign() != 0 {
				c.lines[j] = combine(p, l2, p2.neg(), l)
			}
		}
		for j := range c.rays {
			p2 := dot(r.v, c.rays[j].v)
			if p2.sign() != 0 {
				c.rays[j].v = combine(p, c.rays[j].v, p2.neg(), l)
			}
			c.rays[j].sat.set(idx)
		}
		if !r.eq {
			// The line itself becomes the ray on the positive side.
			l = l.normalize()
			c.rays = append(c.rays, satRay{v: l, sat: satAllPrev(idx)})
		}
		return true
	}

	// Case 2: all lines orthogonal; partition rays by the sign of the
	// product with the constraint.
	type classified struct {
		idx int // index into c.rays, for the adjacency test
		ray satRay
		p   scalar
	}
	var plus, minus []classified
	var keep []satRay
	for i, ry := range c.rays {
		p := dot(r.v, ry.v)
		switch p.sign() {
		case 0:
			ry.sat.set(idx)
			keep = append(keep, ry)
		case 1:
			plus = append(plus, classified{i, ry, p})
		default:
			minus = append(minus, classified{i, ry, p})
		}
	}
	if len(minus) == 0 && !r.eq {
		// Constraint already satisfied by all rays.
		for _, pl := range plus {
			keep = append(keep, pl.ray)
		}
		c.rays = keep
		return true
	}
	if c.maxRays > 0 && len(plus)*len(minus) > c.maxRays {
		// The combination step would explode; drop the constraint
		// (the represented set only grows, a sound over-approximation
		// for the forward analysis).
		c.ncons--
		c.dropped++
		return false
	}
	if c.token.Exhausted() {
		// Budget exhausted: stop refining and drop the constraint. Like
		// the ray cap this only grows the represented set, so the
		// degraded result stays a sound over-approximation. Not counted
		// in dropped: budget drops depend on wall-clock timing and must
		// not feed deterministic precision stats.
		c.ncons--
		return false
	}

	newRays := keep
	if !r.eq {
		for _, pl := range plus {
			newRays = append(newRays, pl.ray)
		}
	}
	// Combine adjacent (plus, minus) pairs onto the hyperplane.
	allRays := c.rays
	for _, pl := range plus {
		for _, mi := range minus {
			if !adjacent(pl.idx, mi.idx, allRays) {
				continue
			}
			// w = p_plus * minus - p_minus * plus (positive combination).
			w := combine(pl.p, mi.ray.v, mi.p.neg(), pl.ray.v)
			if w.isZero() {
				continue
			}
			sat := pl.ray.sat.and(mi.ray.sat)
			sat.set(idx)
			newRays = append(newRays, satRay{v: w, sat: sat})
		}
	}
	c.rays = dedupRays(newRays)
	return true
}

// adjacent implements the combinatorial adjacency test: rays i1 and i2 are
// adjacent iff no other ray saturates every constraint they both saturate.
func adjacent(i1, i2 int, all []satRay) bool {
	common := all[i1].sat.and(all[i2].sat)
	for i := range all {
		if i == i1 || i == i2 {
			continue
		}
		if common.subsetOf(all[i].sat) {
			return false
		}
	}
	return true
}

// dedupRays normalizes every ray and drops duplicates, keyed by the
// canonical (tier-independent) value encoding of the normalized row.
func dedupRays(rays []satRay) []satRay {
	out := rays[:0]
	seen := make(map[string]bool, len(rays))
	sc := getScratch()
	for i := range rays {
		rays[i].v = rays[i].v.normalize()
		sc.key = rays[i].v.appendKey(sc.key[:0])
		k := string(sc.key)
		if !seen[k] {
			seen[k] = true
			out = append(out, rays[i])
		}
	}
	putScratch(sc)
	return out
}

// result extracts the plain generator set.
func (c *cone) result() *genset {
	g := &genset{}
	for _, l := range c.lines {
		g.lines = append(g.lines, l.normalize())
	}
	for _, r := range c.rays {
		g.rays = append(g.rays, r.v)
	}
	return g
}

// gensOf converts a constraint system to generators under the given
// configuration. The int reports how many constraints the ray cap dropped
// (budget-induced drops are excluded; see cone.add).
func gensOf(cons []row, n int, cfg *Config) (*genset, int) {
	c := universePolyCone(n, cfg.maxRays(), cfg.pure(), cfg.token())
	// Equalities first: they only shrink the representation.
	for _, r := range cons {
		if r.eq {
			c.add(r)
		}
	}
	for _, r := range cons {
		if !r.eq {
			c.add(r)
		}
	}
	return c.result(), c.dropped
}

// consOf converts generators to a minimized constraint system via the dual
// cone: the constraints of cone(G) are the generators of
// {c : c.g >= 0 for rays, c.l == 0 for lines}. The dual conversion is
// never capped or budget-dropped: skipping a generator would shrink the
// represented set, which is unsound for the forward analysis.
func consOf(g *genset, n int, pure bool) []row {
	dual := universeCone(n+1, 0, pure)
	for _, l := range g.lines {
		dual.add(row{v: l, eq: true})
	}
	for _, r := range g.rays {
		dual.add(row{v: r, eq: false})
	}
	var out []row
	for _, l := range dual.lines {
		if trivialRow(l, true) {
			continue
		}
		out = append(out, row{v: l.clone(), eq: true})
	}
	for _, r := range dual.rays {
		if trivialRow(r.v, false) {
			continue
		}
		out = append(out, row{v: r.v.clone(), eq: false})
	}
	return out
}

// trivialRow reports whether the row is the implicit positivity constraint
// (a nonnegative multiple of e0) or zero, neither of which constrains the
// dehomogenized polyhedron.
func trivialRow(v vec, eq bool) bool {
	n := v.dim()
	for i := 1; i < n; i++ {
		if v.sign(i) != 0 {
			return false
		}
	}
	if eq {
		// d == 0 would denote an empty polyhedron; keep it so emptiness
		// is preserved, unless it is the zero row.
		return v.sign(0) == 0
	}
	return v.sign(0) >= 0
}
