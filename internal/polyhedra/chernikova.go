package polyhedra

import (
	"repro/internal/arena"
	"repro/internal/budget"
)

// genset is the generator representation of a homogenized cone: lines
// (bidirectional) and rays. Rays with a positive coordinate 0 are vertices
// of the dehomogenized polyhedron (point = v[1..]/v[0]); rays with
// coordinate 0 zero are recession rays.
type genset struct {
	lines []vec
	rays  []vec
}

func (g *genset) clone() *genset {
	c := &genset{}
	for _, l := range g.lines {
		c.lines = append(c.lines, l.clone())
	}
	for _, r := range g.rays {
		c.rays = append(c.rays, r.clone())
	}
	return c
}

// cloneAr is clone with machine-tier backings drawn from the arena.
func (g *genset) cloneAr(ar *arena.Arena) *genset {
	c := &genset{}
	for _, l := range g.lines {
		c.lines = append(c.lines, l.cloneAr(ar))
	}
	for _, r := range g.rays {
		c.rays = append(c.rays, r.cloneAr(ar))
	}
	return c
}

// release returns every generator's machine-tier backing to the arena.
// The caller asserts the genset is dead.
func (g *genset) release(ar *arena.Arena) {
	for _, l := range g.lines {
		l.release(ar)
	}
	for _, r := range g.rays {
		r.release(ar)
	}
}

// hasVertex reports whether any ray has a positive homogenizing coordinate,
// i.e. the dehomogenized polyhedron is non-empty.
func (g *genset) hasVertex() bool {
	for _, r := range g.rays {
		if r.sign(0) > 0 {
			return true
		}
	}
	return false
}

// row is a constraint row: v[0] + v[1]*x1 + ... + v[n]*xn {>=, ==} 0.
type row struct {
	v  vec
	eq bool
}

func (r row) clone() row { return row{v: r.v.clone(), eq: r.eq} }

// satRay pairs a ray with the set of added constraints it saturates.
type satRay struct {
	v   vec
	sat bitset
}

// cone is the incremental double-description state used during
// constraint-to-generator conversion.
type cone struct {
	dim   int // vector length
	lines []vec
	rays  []satRay
	ncons int
	// maxRays caps intermediate ray counts; 0 means unlimited.
	maxRays int
	// dropped counts constraints skipped due to the cap (over-approximation).
	dropped int
	// pure forces new vectors onto the exact tier (reference kernel).
	pure bool
	// token, when non-nil, is polled before the combination step: an
	// exhausted budget drops the remaining constraints (sound
	// over-approximation, not counted in dropped — budget drops are
	// timing-dependent and must not surface in deterministic stats).
	token *budget.Token
	// ar recycles machine-tier vectors and saturation bitsets: every
	// generator the conversion replaces or drops is returned to it at the
	// point it becomes provably dead. Nil disables recycling.
	ar *arena.Arena

	// Per-cone scratch reused across add calls, so the classification and
	// dedup steps stop allocating once warm. spare double-buffers the ray
	// slice: each add builds its successor ray set in spare and swaps, so
	// the old backing is recycled instead of reallocated.
	spare             []satRay
	plusBuf, minusBuf []classified
	dedupIdx          map[uint64]int32
	dedupKeys         []byte
	dedupEnds         []int32
}

// classified pairs a ray with its index and its product against the
// constraint being added (the case-2 partition of cone.add).
type classified struct {
	idx int // index into c.rays, for the adjacency test
	ray satRay
	p   scalar
}

// universePolyCone returns the cone of the universe polyhedron over n
// variables: lines e1..en and the positivity ray e0. The implicit
// positivity constraint d >= 0 is registered as constraint index 0 so that
// saturation-based adjacency tests account for it: the initial ray e0 does
// not saturate it, while every line (d = 0) does.
func universePolyCone(n, maxRays int, pure bool, token *budget.Token, ar *arena.Arena) *cone {
	c := &cone{dim: n + 1, maxRays: maxRays, ncons: 1, pure: pure, token: token, ar: ar}
	for i := 1; i <= n; i++ {
		l := newVecAr(ar, n+1, pure)
		l.setInt64(i, 1)
		c.lines = append(c.lines, l)
	}
	r := newVecAr(ar, n+1, pure)
	r.setInt64(0, 1)
	c.rays = append(c.rays, satRay{v: r, sat: newBitsetAr(ar, 1)})
	return c
}

// universeCone returns the full-space cone in dimension m (m lines, no
// rays); used for the dual (generator-to-constraint) conversion.
func universeCone(m, maxRays int, pure bool, ar *arena.Arena) *cone {
	c := &cone{dim: m, maxRays: maxRays, pure: pure, ar: ar}
	for i := 0; i < m; i++ {
		l := newVecAr(ar, m, pure)
		l.setInt64(i, 1)
		c.lines = append(c.lines, l)
	}
	return c
}

// satAllPrev returns a bitset with constraints 0..n-1 marked saturated.
func satAllPrev(ar *arena.Arena, n int) bitset {
	b := newBitsetAr(ar, n)
	for i := 0; i < n; i++ {
		b.set(i)
	}
	return b
}

// add incorporates the constraint r into the generator description
// (Chernikova's algorithm). It reports whether the constraint was applied
// (false when the ray cap forced it to be dropped, which over-approximates).
func (c *cone) add(r row) bool {
	idx := c.ncons
	c.ncons++

	// Case 1: some line is not orthogonal to the constraint. Use it to
	// shift every other generator onto the hyperplane.
	for i, l := range c.lines {
		p := dot(r.v, l)
		if p.sign() == 0 {
			continue
		}
		if p.sign() < 0 {
			old := l
			l = l.neg()
			p = p.neg()
			old.release(c.ar) // negation copied; the original backing is dead
		}
		c.lines = append(c.lines[:i], c.lines[i+1:]...)
		for j, l2 := range c.lines {
			p2 := dot(r.v, l2)
			if p2.sign() != 0 {
				c.lines[j] = combine(c.ar, p, l2, p2.neg(), l)
				l2.release(c.ar)
			}
		}
		for j := range c.rays {
			old := c.rays[j].v
			p2 := dot(r.v, old)
			if p2.sign() != 0 {
				c.rays[j].v = combine(c.ar, p, old, p2.neg(), l)
				old.release(c.ar)
			}
			c.rays[j].sat.set(idx)
		}
		if !r.eq {
			// The line itself becomes the ray on the positive side.
			l = l.normalize()
			c.rays = append(c.rays, satRay{v: l, sat: satAllPrev(c.ar, idx)})
		} else {
			l.release(c.ar)
		}
		return true
	}

	// Case 2: all lines orthogonal; partition rays by the sign of the
	// product with the constraint. The partitions live in per-cone scratch
	// buffers (written back below on every exit path).
	plus, minus := c.plusBuf[:0], c.minusBuf[:0]
	keep := c.spare[:0]
	for i, ry := range c.rays {
		p := dot(r.v, ry.v)
		switch p.sign() {
		case 0:
			ry.sat.set(idx)
			keep = append(keep, ry)
		case 1:
			plus = append(plus, classified{i, ry, p})
		default:
			minus = append(minus, classified{i, ry, p})
		}
	}
	if len(minus) == 0 && !r.eq {
		// Constraint already satisfied by all rays.
		for _, pl := range plus {
			keep = append(keep, pl.ray)
		}
		c.plusBuf, c.minusBuf = plus, minus
		c.spare = c.rays[:0]
		c.rays = keep
		return true
	}
	if c.maxRays > 0 && len(plus)*len(minus) > c.maxRays {
		// The combination step would explode; drop the constraint
		// (the represented set only grows, a sound over-approximation
		// for the forward analysis).
		c.plusBuf, c.minusBuf, c.spare = plus, minus, keep[:0]
		c.ncons--
		c.dropped++
		return false
	}
	if c.token.Exhausted() {
		// Budget exhausted: stop refining and drop the constraint. Like
		// the ray cap this only grows the represented set, so the
		// degraded result stays a sound over-approximation. Not counted
		// in dropped: budget drops depend on wall-clock timing and must
		// not feed deterministic precision stats.
		c.plusBuf, c.minusBuf, c.spare = plus, minus, keep[:0]
		c.ncons--
		return false
	}

	newRays := keep
	if !r.eq {
		for _, pl := range plus {
			newRays = append(newRays, pl.ray)
		}
	}
	// Combine adjacent (plus, minus) pairs onto the hyperplane.
	allRays := c.rays
	for _, pl := range plus {
		for _, mi := range minus {
			if !adjacent(c.ar, pl.idx, mi.idx, allRays) {
				continue
			}
			// w = p_plus * minus - p_minus * plus (positive combination).
			w := combine(c.ar, pl.p, mi.ray.v, mi.p.neg(), pl.ray.v)
			if w.isZero() {
				w.release(c.ar)
				continue
			}
			sat := pl.ray.sat.and(c.ar, mi.ray.sat)
			sat.set(idx)
			newRays = append(newRays, satRay{v: w, sat: sat})
		}
	}
	c.rays = c.dedupRays(newRays)
	c.spare = allRays[:0]
	c.plusBuf, c.minusBuf = plus, minus
	// The minus rays never survive the constraint; plus rays survive only
	// for inequalities. Their storage is released strictly after the
	// combination loop, which reads it through allRays.
	for _, mi := range minus {
		mi.ray.v.release(c.ar)
		mi.ray.sat.release(c.ar)
	}
	if r.eq {
		for _, pl := range plus {
			pl.ray.v.release(c.ar)
			pl.ray.sat.release(c.ar)
		}
	}
	return true
}

// adjacent implements the combinatorial adjacency test: rays i1 and i2 are
// adjacent iff no other ray saturates every constraint they both saturate.
func adjacent(ar *arena.Arena, i1, i2 int, all []satRay) bool {
	common := all[i1].sat.and(ar, all[i2].sat)
	adj := true
	for i := range all {
		if i == i1 || i == i2 {
			continue
		}
		if common.subsetOf(all[i].sat) {
			adj = false
			break
		}
	}
	common.release(ar)
	return adj
}

// dedupRays normalizes every ray and drops duplicates, keyed by the
// canonical (tier-independent) value encoding of the normalized row.
// Dropped duplicates are released to the arena. Kept keys live in the
// cone's reused scratch (concatenated bytes plus end offsets) indexed by
// an open-addressed hash map of the key bytes, so the steady state
// allocates nothing — a map[string]bool here previously accounted for
// more than half of the join benchmark's allocations.
func (c *cone) dedupRays(rays []satRay) []satRay {
	out := rays[:0]
	if c.dedupIdx == nil {
		c.dedupIdx = make(map[uint64]int32, 2*len(rays))
	} else {
		clear(c.dedupIdx)
	}
	keys := c.dedupKeys[:0]
	ends := c.dedupEnds[:0]
	for i := range rays {
		rays[i].v = rays[i].v.normalize()
		start := len(keys)
		keys = rays[i].v.appendKey(keys)
		key := keys[start:]
		dup := false
		for h := fnv1a(key); ; h++ {
			j, ok := c.dedupIdx[h]
			if !ok {
				c.dedupIdx[h] = int32(len(ends))
				break
			}
			ks := 0
			if j > 0 {
				ks = int(ends[j-1])
			}
			if string(keys[ks:ends[j]]) == string(key) {
				dup = true
				break
			}
			// Genuine 64-bit hash collision: probe the next slot.
		}
		if dup {
			keys = keys[:start]
			rays[i].v.release(c.ar)
			rays[i].sat.release(c.ar)
			continue
		}
		ends = append(ends, int32(len(keys)))
		out = append(out, rays[i])
	}
	c.dedupKeys, c.dedupEnds = keys, ends
	return out
}

// fnv1a is the 64-bit FNV-1a hash of b.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// result extracts the plain generator set. The saturation bitsets are
// not part of it and are released; the cone must not be used afterwards.
func (c *cone) result() *genset {
	g := &genset{}
	for _, l := range c.lines {
		g.lines = append(g.lines, l.normalize())
	}
	for _, r := range c.rays {
		g.rays = append(g.rays, r.v)
		r.sat.release(c.ar)
	}
	return g
}

// gensOf converts a constraint system to generators under the given
// configuration. The int reports how many constraints the ray cap dropped
// (budget-induced drops are excluded; see cone.add).
func gensOf(cons []row, n int, cfg *Config) (*genset, int) {
	c := universePolyCone(n, cfg.maxRays(), cfg.pure(), cfg.token(), cfg.ar())
	// Equalities first: they only shrink the representation.
	for _, r := range cons {
		if r.eq {
			c.add(r)
		}
	}
	for _, r := range cons {
		if !r.eq {
			c.add(r)
		}
	}
	return c.result(), c.dropped
}

// consOf converts generators to a minimized constraint system via the dual
// cone: the constraints of cone(G) are the generators of
// {c : c.g >= 0 for rays, c.l == 0 for lines}. The dual conversion is
// never capped or budget-dropped: skipping a generator would shrink the
// represented set, which is unsound for the forward analysis.
func consOf(g *genset, n int, cfg *Config) []row {
	ar := cfg.ar()
	dual := universeCone(n+1, 0, cfg.pure(), ar)
	for _, l := range g.lines {
		dual.add(row{v: l, eq: true})
	}
	for _, r := range g.rays {
		dual.add(row{v: r, eq: false})
	}
	// The outputs are copied out and the dual cone's entire working set is
	// released: add never stores the input rows (it only reads them), so
	// none of the dual's storage aliases g.
	var out []row
	for _, l := range dual.lines {
		if !trivialRow(l, true) {
			out = append(out, row{v: l.cloneAr(ar), eq: true})
		}
		l.release(ar)
	}
	for _, r := range dual.rays {
		if !trivialRow(r.v, false) {
			out = append(out, row{v: r.v.cloneAr(ar), eq: false})
		}
		r.v.release(ar)
		r.sat.release(ar)
	}
	return out
}

// trivialRow reports whether the row is the implicit positivity constraint
// (a nonnegative multiple of e0) or zero, neither of which constrains the
// dehomogenized polyhedron.
func trivialRow(v vec, eq bool) bool {
	n := v.dim()
	for i := 1; i < n; i++ {
		if v.sign(i) != 0 {
			return false
		}
	}
	if eq {
		// d == 0 would denote an empty polyhedron; keep it so emptiness
		// is preserved, unless it is the zero row.
		return v.sign(0) == 0
	}
	return v.sign(0) >= 0
}
